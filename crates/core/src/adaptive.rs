//! Adaptive sample-count selection — the paper's declared future work
//! ("Currently, we are working on optimization algorithms that update K
//! adaptively", §5.2).
//!
//! Fixed `K` must be chosen for the worst comparison the search will
//! ever make (eq. 22 needs the global separation `λ`, which is unknown
//! in practice). The adaptive policy instead samples in *rounds* — one
//! parallel evaluation of the whole candidate batch per time step — and
//! stops as soon as the decision the optimizer is about to take is
//! stable:
//!
//! * at least `min_k` rounds are always taken,
//! * after each round the running per-point minima are updated
//!   (the `L_y^{(k)}` estimators of eq. 13),
//! * sampling stops once the identity of the best candidate has not
//!   changed for `patience` consecutive rounds, or at `max_k`.
//!
//! Easy comparisons (well-separated points) settle at `min_k`; hard
//! ones (close points under heavy noise) automatically buy more
//! samples — exactly the behaviour eq. 22 prescribes, without knowing
//! `λ` up front.

use crate::optimizer::Optimizer;
use crate::server::ServerError;
use crate::tuner::{FaultStats, TuningOutcome};
use harmony_cluster::{Cluster, TuningTrace};
use harmony_surface::Objective;
use harmony_variability::noise::NoiseModel;
use harmony_variability::seeded_rng;
use rand::RngCore;

/// The adaptive sampling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveSampling {
    /// Minimum rounds per batch (≥ 1).
    pub min_k: usize,
    /// Maximum rounds per batch (≥ `min_k`).
    pub max_k: usize,
    /// Consecutive rounds the winning candidate must stay the same
    /// before sampling stops.
    pub patience: usize,
}

impl Default for AdaptiveSampling {
    fn default() -> Self {
        AdaptiveSampling {
            min_k: 1,
            max_k: 8,
            patience: 2,
        }
    }
}

impl AdaptiveSampling {
    /// Validates the policy.
    ///
    /// # Panics
    /// Panics when `min_k == 0`, `max_k < min_k`, or `patience == 0`.
    pub fn validate(&self) {
        assert!(self.min_k >= 1, "adaptive sampling needs min_k >= 1");
        assert!(self.max_k >= self.min_k, "max_k must be >= min_k");
        assert!(self.patience >= 1, "patience must be >= 1");
    }

    /// Samples `point_costs` in rounds on `cluster` until the winner is
    /// stable; returns the per-point min estimates and the number of
    /// rounds consumed. Every round appends one `T_k` to `trace`.
    pub fn sample_batch<M: NoiseModel + ?Sized>(
        &self,
        cluster: &Cluster,
        point_costs: &[f64],
        noise: &M,
        rng: &mut dyn RngCore,
        trace: &mut TuningTrace,
    ) -> (Vec<f64>, usize) {
        self.validate();
        assert!(!point_costs.is_empty(), "adaptive sampling of empty batch");
        let mut mins = vec![f64::INFINITY; point_costs.len()];
        let mut stable_rounds = 0usize;
        let mut last_winner = usize::MAX;
        let mut rounds = 0usize;
        while rounds < self.max_k {
            // one round: every candidate evaluated once, in parallel
            // (chunked if the batch exceeds the cluster width)
            for chunk_start in (0..point_costs.len()).step_by(cluster.procs) {
                let chunk_end = (chunk_start + cluster.procs).min(point_costs.len());
                let outcome =
                    cluster.execute_step(&point_costs[chunk_start..chunk_end], noise, rng);
                trace.push(outcome.t_k);
                for (i, &obs) in outcome.observed.iter().enumerate() {
                    let idx = chunk_start + i;
                    if obs < mins[idx] {
                        mins[idx] = obs;
                    }
                }
            }
            rounds += 1;
            let winner = argmin(&mins);
            if winner == last_winner {
                stable_rounds += 1;
            } else {
                stable_rounds = 0;
                last_winner = winner;
            }
            if rounds >= self.min_k && stable_rounds >= self.patience {
                break;
            }
        }
        (mins, rounds)
    }
}

fn argmin(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty batch")
        .0
}

/// Configuration of an adaptive tuning session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveTunerConfig {
    /// Simulated processors.
    pub procs: usize,
    /// Time-step budget `K` of eq. 2.
    pub max_steps: usize,
    /// The adaptive sampling policy.
    pub policy: AdaptiveSampling,
    /// RNG seed.
    pub seed: u64,
    /// Parallel instances of the tuned configuration charged per
    /// exploit step (see `TunerConfig::exploit_width`).
    pub exploit_width: usize,
}

/// The adaptive-K counterpart of [`crate::tuner::OnlineTuner`].
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveTuner {
    cfg: AdaptiveTunerConfig,
}

impl AdaptiveTuner {
    /// Creates the tuner.
    ///
    /// # Panics
    /// Panics on a zero budget/processor count or an invalid policy.
    pub fn new(cfg: AdaptiveTunerConfig) -> Self {
        assert!(cfg.procs > 0, "tuner needs processors");
        assert!(cfg.max_steps > 0, "tuner needs a positive step budget");
        cfg.policy.validate();
        AdaptiveTuner { cfg }
    }

    /// Runs one session; semantics mirror `OnlineTuner::run` with the
    /// fixed-K schedule replaced by per-batch adaptive rounds.
    ///
    /// # Errors
    /// [`ServerError::NoObservations`] when the optimizer never produced
    /// a recommendation (it proposed no batches at all).
    pub fn run<O, M>(
        &self,
        objective: &O,
        noise: &M,
        optimizer: &mut dyn Optimizer,
    ) -> Result<TuningOutcome, ServerError>
    where
        O: Objective + ?Sized,
        M: NoiseModel + ?Sized,
    {
        let cluster = Cluster::new(self.cfg.procs);
        let mut rng = seeded_rng(self.cfg.seed);
        let mut trace = TuningTrace::new();
        let mut evaluations = 0usize;
        let mut quality_curve: Vec<(usize, f64)> = Vec::new();

        while trace.len() < self.cfg.max_steps && !optimizer.converged() {
            let batch = optimizer.propose();
            if batch.is_empty() {
                break;
            }
            let costs: Vec<f64> = batch.iter().map(|p| objective.eval(p)).collect();
            let (estimates, rounds) = self
                .cfg
                .policy
                .sample_batch(&cluster, &costs, noise, &mut rng, &mut trace);
            evaluations += batch.len() * rounds;
            optimizer.observe(&estimates);
            if let Some((rec, _)) = optimizer.recommendation() {
                quality_curve.push((trace.len(), objective.eval(&rec)));
            }
        }

        let Some((best_point, best_estimate)) = optimizer.recommendation() else {
            return Err(ServerError::NoObservations);
        };
        let best_true_cost = objective.eval(&best_point);
        let exploit_costs = vec![best_true_cost; self.cfg.exploit_width.clamp(1, self.cfg.procs)];
        while trace.len() < self.cfg.max_steps {
            let outcome = cluster.execute_step(&exploit_costs, noise, &mut rng);
            trace.push(outcome.t_k);
        }

        Ok(TuningOutcome {
            trace,
            steps_budget: self.cfg.max_steps,
            best_point,
            best_estimate,
            best_true_cost,
            converged: optimizer.converged(),
            evaluations,
            quality_curve,
            faults: FaultStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pro::ProOptimizer;
    use harmony_cluster::Cluster;
    use harmony_params::{ParamDef, ParamSpace, Point};
    use harmony_surface::objective::FnObjective;
    use harmony_variability::noise::Noise;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::integer("x", -15, 15, 1).unwrap(),
            ParamDef::integer("y", -15, 15, 1).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn noise_free_batches_stop_at_min_rounds() {
        let policy = AdaptiveSampling {
            min_k: 1,
            max_k: 10,
            patience: 2,
        };
        let cluster = Cluster::new(8);
        let mut rng = seeded_rng(1);
        let mut trace = TuningTrace::new();
        let (mins, rounds) = policy.sample_batch(
            &cluster,
            &[3.0, 1.0, 2.0],
            &Noise::None,
            &mut rng,
            &mut trace,
        );
        // winner is immediately stable; patience=2 needs rounds 2..3
        assert!(rounds <= 3, "rounds={rounds}");
        assert_eq!(mins, vec![3.0, 1.0, 2.0]);
        assert_eq!(trace.len(), rounds);
    }

    #[test]
    fn hard_comparisons_buy_more_rounds_than_easy_ones() {
        let policy = AdaptiveSampling {
            min_k: 1,
            max_k: 20,
            patience: 2,
        };
        let cluster = Cluster::new(8);
        let noise = Noise::Pareto {
            alpha: 1.1,
            rho: 0.4,
        };
        let reps = 200;
        let avg_rounds = |costs: &[f64], seed_base: u64| -> f64 {
            let mut total = 0usize;
            for r in 0..reps {
                let mut rng = seeded_rng(seed_base + r);
                let mut trace = TuningTrace::new();
                let (_, rounds) =
                    policy.sample_batch(&cluster, costs, &noise, &mut rng, &mut trace);
                total += rounds;
            }
            total as f64 / reps as f64
        };
        let easy = avg_rounds(&[1.0, 20.0], 10);
        let hard = avg_rounds(&[1.0, 1.05], 10);
        assert!(hard > easy, "hard={hard} easy={easy}");
    }

    #[test]
    fn max_k_caps_sampling() {
        let policy = AdaptiveSampling {
            min_k: 2,
            max_k: 3,
            patience: 50, // never satisfied
        };
        let cluster = Cluster::new(4);
        let mut rng = seeded_rng(2);
        let mut trace = TuningTrace::new();
        let noise = Noise::paper_default(0.4);
        let (_, rounds) = policy.sample_batch(&cluster, &[1.0, 1.01], &noise, &mut rng, &mut trace);
        assert_eq!(rounds, 3);
    }

    #[test]
    fn oversized_batches_chunk_across_steps() {
        let policy = AdaptiveSampling {
            min_k: 1,
            max_k: 1,
            patience: 1,
        };
        let cluster = Cluster::new(2);
        let mut rng = seeded_rng(3);
        let mut trace = TuningTrace::new();
        let (mins, rounds) = policy.sample_batch(
            &cluster,
            &[1.0, 2.0, 3.0, 4.0, 5.0],
            &Noise::None,
            &mut rng,
            &mut trace,
        );
        assert_eq!(rounds, 1);
        assert_eq!(trace.len(), 3); // ceil(5/2) steps for the round
        assert_eq!(mins, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn adaptive_session_finds_optimum() {
        let obj = FnObjective::new("bowl", space(), |p: &Point| {
            2.0 + 0.05 * (p[0] * p[0] + p[1] * p[1])
        });
        let tuner = AdaptiveTuner::new(AdaptiveTunerConfig {
            procs: 16,
            max_steps: 120,
            policy: AdaptiveSampling::default(),
            seed: 4,
            exploit_width: 6,
        });
        let mut opt = ProOptimizer::with_defaults(space());
        let out = tuner
            .run(&obj, &Noise::paper_default(0.2), &mut opt)
            .unwrap();
        assert!(out.best_true_cost < 3.0, "bt={}", out.best_true_cost);
        assert!(out.trace.len() >= 120);
    }

    #[test]
    fn adaptive_spends_fewer_samples_than_fixed_max_k() {
        // the whole point: adaptive uses < max_k samples on average
        let obj = FnObjective::new("bowl", space(), |p: &Point| {
            2.0 + 0.05 * (p[0] * p[0] + p[1] * p[1])
        });
        let noise = Noise::paper_default(0.2);
        let tuner = AdaptiveTuner::new(AdaptiveTunerConfig {
            procs: 64,
            max_steps: 100,
            policy: AdaptiveSampling {
                min_k: 1,
                max_k: 6,
                patience: 2,
            },
            seed: 5,
            exploit_width: 6,
        });
        let mut opt = ProOptimizer::with_defaults(space());
        let out = tuner.run(&obj, &noise, &mut opt).unwrap();
        let fixed6 = crate::tuner::OnlineTuner::new(crate::tuner::TunerConfig {
            procs: 64,
            max_steps: 100,
            estimator: crate::sampling::Estimator::MinOfK(6),
            mode: harmony_cluster::SamplingMode::SequentialSteps,
            seed: 5,
            full_occupancy: false,
            exploit_width: 6,
        });
        let mut opt6 = ProOptimizer::with_defaults(space());
        let out6 = fixed6.run(&obj, &noise, &mut opt6).unwrap();
        assert!(
            out.evaluations < out6.evaluations,
            "adaptive={} fixed6={}",
            out.evaluations,
            out6.evaluations
        );
    }

    #[test]
    #[should_panic(expected = "min_k >= 1")]
    fn zero_min_k_rejected() {
        AdaptiveSampling {
            min_k: 0,
            max_k: 2,
            patience: 1,
        }
        .validate();
    }
}

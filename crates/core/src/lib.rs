//! Parallel Rank Ordering (PRO) and companion direct-search optimizers
//! for on-line parameter tuning — the primary contribution of
//! Tabatabaee, Tiwari & Hollingsworth, *"Parallel Parameter Tuning for
//! Applications with Performance Variability"* (SC 2005).
//!
//! # Architecture
//!
//! Every algorithm implements the batch **ask/tell** interface
//! [`Optimizer`]: it *proposes* a batch of admissible points, the caller
//! evaluates them (with whatever noise, sampling, and scheduling policy
//! applies) and *observes* the estimates back. This keeps the
//! algorithms pure state machines and puts measurement policy — the
//! paper's other contribution — in one place:
//!
//! * [`pro`] — **Parallel Rank Ordering** (Algorithm 2): reflect all
//!   non-best vertices through the best in parallel, probe the most
//!   promising expansion first, expand or shrink; GSS-class and
//!   projection-aware,
//! * [`sro`] — Sequential Rank Ordering (Algorithm 1),
//! * [`nelder_mead`] — the classical simplex method (the original
//!   Active Harmony optimizer, §3.1),
//! * [`baselines`] — random search, simulated annealing, and a genetic
//!   algorithm (§2 argues these transiently explore too expensively for
//!   on-line use),
//! * [`sampling`] — the estimator layer: single sample, **min-of-K**
//!   (§5), mean-of-K, median-of-K,
//! * [`cache`] — transparent objective memoization ([`CachedObjective`]);
//!   the tuner re-probes the same points constantly and the wrapped
//!   objective is deterministic, so the memo is exact,
//! * [`adaptive`] — the paper's future-work item: per-batch adaptive
//!   sample counts that stop as soon as the pending decision is stable,
//! * [`surrogate`] — the Bayesian-optimization tier: a from-scratch
//!   TPE-style density-ratio surrogate that models the observed
//!   (point, min-of-K estimate) history and proposes each batch from a
//!   deterministic splitmix-seeded candidate pool (benchmarked
//!   head-to-head with PRO/SRO/Nelder–Mead in the T8 experiment),
//! * [`restart`] — multi-start wrapping for global coverage on deceptive
//!   surfaces,
//! * [`logged`] — transparent observation logging and prior-run reuse
//!   (the paper's reference \[3\]): export a session's measurements as a
//!   performance database or warm-start the next session,
//! * [`tuner`] — the on-line tuning driver: runs an optimizer against an
//!   objective + noise model on a simulated SPMD cluster for exactly `K`
//!   time steps, producing the `Total_Time`/NTT record of eq. 2/23,
//! * [`server`] — a fault-tolerant Active-Harmony-style tuning
//!   **server** with real client threads exchanging fetch/report
//!   messages over channels, including free parallel multi-sampling
//!   when `P > n` (§5.2); under an injected
//!   [`harmony_cluster::FaultPlan`] it reassigns missed slots, evicts
//!   crashed clients, and advances optimizers on partial batches
//!   ([`Optimizer::observe_partial`]). Sessions can attach a shared
//!   cross-session [`harmony_surface::SharedPerfDb`]
//!   ([`server::SharedSession`]) so concurrent sessions reuse each
//!   other's measurements (cache-before-evaluate) and publish their
//!   estimates back,
//! * [`warm`] — warm-start seeding: a new session picks its simplex
//!   center from neighbours' published estimates, smoothed by §6's
//!   nearest-neighbour interpolation to damp lucky min-of-K outliers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod baselines;
pub mod cache;
pub mod logged;
pub mod nelder_mead;
pub mod optimizer;
pub mod pro;
pub mod restart;
pub mod sampling;
pub mod server;
pub mod sro;
pub mod surrogate;
pub mod tuner;
pub mod warm;

pub use adaptive::{AdaptiveSampling, AdaptiveTuner, AdaptiveTunerConfig};
pub use cache::CachedObjective;
pub use logged::{Logged, ObservationLog};
pub use optimizer::Optimizer;
pub use pro::{ProConfig, ProOptimizer};
pub use restart::{restarting_pro, Restarting};
pub use sampling::Estimator;
pub use server::{
    run_distributed, run_recoverable, run_resilient, run_resilient_shared, run_session_traced,
    run_supervised, run_supervised_shared, RecoveryConfig, ServerConfig, ServerError,
    SharedSession, SupervisedOutcome, SupervisorReport,
};
pub use surrogate::{SurrogateConfig, SurrogateOptimizer};
pub use tuner::{FaultStats, OnlineTuner, TunerConfig, TuningOutcome};
pub use warm::warm_start_center;

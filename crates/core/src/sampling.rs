//! The estimator layer (§5): how `K` raw observations of one point are
//! reduced to the single estimate fed to the optimizer.
//!
//! The conventional choice is the sample mean, but a heavy-tailed
//! `n(v)` has infinite variance so the mean never concentrates (§5.1).
//! The paper's proposal is the **minimum**: for Pareto(α) noise the min
//! of `K` samples is Pareto(`Kα`), finite-variance as soon as
//! `K > 2/α`, and `f + n_min(f)` is increasing in `f`, so comparing
//! minima preserves the true ordering of candidate points.

/// Reduction applied to the `K` observations of one candidate point.
///
/// # Example
///
/// ```
/// use harmony_core::Estimator;
///
/// let samples = [5.2, 47.0, 5.4]; // one heavy-tail outlier
/// assert_eq!(Estimator::MinOfK(3).reduce(&samples), 5.2);
/// assert!(Estimator::MeanOfK(3).reduce(&samples) > 19.0); // wrecked
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// One observation, used as-is (`K = 1`).
    Single,
    /// Minimum of `K` observations — the paper's resilient estimator
    /// (`L_y^{(K)}`, eq. 13).
    MinOfK(
        /// Number of samples `K ≥ 1`.
        usize,
    ),
    /// Mean of `K` observations — the conventional estimator that fails
    /// under infinite variance.
    MeanOfK(
        /// Number of samples `K ≥ 1`.
        usize,
    ),
    /// Median of `K` observations — a robust-statistics control.
    MedianOfK(
        /// Number of samples `K ≥ 1`.
        usize,
    ),
}

impl Estimator {
    /// The number of samples the estimator consumes per point.
    pub fn samples(&self) -> usize {
        match *self {
            Estimator::Single => 1,
            Estimator::MinOfK(k) | Estimator::MeanOfK(k) | Estimator::MedianOfK(k) => {
                assert!(k >= 1, "estimator needs at least one sample");
                k
            }
        }
    }

    /// Reduces one point's observations to its estimate.
    ///
    /// # Panics
    /// Panics when `samples` is empty or its length differs from
    /// [`Estimator::samples`].
    pub fn reduce(&self, samples: &[f64]) -> f64 {
        assert_eq!(
            samples.len(),
            self.samples(),
            "estimator expected {} samples, got {}",
            self.samples(),
            samples.len()
        );
        match *self {
            Estimator::Single => samples[0],
            Estimator::MinOfK(_) => samples.iter().copied().fold(f64::INFINITY, f64::min),
            Estimator::MeanOfK(k) => samples.iter().sum::<f64>() / k as f64,
            Estimator::MedianOfK(_) => {
                let mut s = samples.to_vec();
                // total_cmp: NaN samples sort to the top instead of
                // panicking, so the median still comes from the finite
                // majority
                s.sort_by(|a, b| a.total_cmp(b));
                let n = s.len();
                if n % 2 == 1 {
                    s[n / 2]
                } else {
                    0.5 * (s[n / 2 - 1] + s[n / 2])
                }
            }
        }
    }

    /// Reduces however many observations actually arrived — the
    /// fault-tolerant variant of [`Estimator::reduce`] for slots whose
    /// reports were lost or abandoned. With the full `K` samples this is
    /// bit-identical to `reduce` (the mean divides by the actual count,
    /// which then equals `K`); with fewer it degrades gracefully to the
    /// same statistic over the survivors.
    ///
    /// # Panics
    /// Panics when `samples` is empty or exceeds [`Estimator::samples`].
    pub fn reduce_available(&self, samples: &[f64]) -> f64 {
        assert!(
            !samples.is_empty(),
            "cannot estimate a point with zero surviving samples"
        );
        assert!(
            samples.len() <= self.samples(),
            "estimator expected at most {} samples, got {}",
            self.samples(),
            samples.len()
        );
        match *self {
            Estimator::Single => samples[0],
            Estimator::MinOfK(_) => samples.iter().copied().fold(f64::INFINITY, f64::min),
            Estimator::MeanOfK(_) => samples.iter().sum::<f64>() / samples.len() as f64,
            Estimator::MedianOfK(_) => {
                let mut s = samples.to_vec();
                // total_cmp: NaN samples sort to the top instead of
                // panicking, so the median still comes from the finite
                // majority
                s.sort_by(|a, b| a.total_cmp(b));
                let n = s.len();
                if n % 2 == 1 {
                    s[n / 2]
                } else {
                    0.5 * (s[n / 2 - 1] + s[n / 2])
                }
            }
        }
    }

    /// Short label for reports ("min3", "mean5", …).
    pub fn label(&self) -> String {
        match *self {
            Estimator::Single => "single".into(),
            Estimator::MinOfK(k) => format!("min{k}"),
            Estimator::MeanOfK(k) => format!("mean{k}"),
            Estimator::MedianOfK(k) => format!("median{k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_counts() {
        assert_eq!(Estimator::Single.samples(), 1);
        assert_eq!(Estimator::MinOfK(5).samples(), 5);
        assert_eq!(Estimator::MeanOfK(3).samples(), 3);
    }

    #[test]
    fn reductions() {
        assert_eq!(Estimator::Single.reduce(&[4.0]), 4.0);
        assert_eq!(Estimator::MinOfK(3).reduce(&[4.0, 2.0, 9.0]), 2.0);
        assert_eq!(Estimator::MeanOfK(3).reduce(&[4.0, 2.0, 9.0]), 5.0);
        assert_eq!(Estimator::MedianOfK(3).reduce(&[4.0, 2.0, 9.0]), 4.0);
        assert_eq!(Estimator::MedianOfK(4).reduce(&[4.0, 2.0, 9.0, 6.0]), 5.0);
    }

    #[test]
    fn labels() {
        assert_eq!(Estimator::Single.label(), "single");
        assert_eq!(Estimator::MinOfK(10).label(), "min10");
        assert_eq!(Estimator::MedianOfK(7).label(), "median7");
    }

    #[test]
    #[should_panic(expected = "expected 3 samples")]
    fn wrong_sample_count_rejected() {
        Estimator::MinOfK(3).reduce(&[1.0]);
    }

    #[test]
    fn reduce_available_matches_reduce_on_full_samples() {
        let samples = [4.0, 2.0, 9.0];
        for est in [
            Estimator::MinOfK(3),
            Estimator::MeanOfK(3),
            Estimator::MedianOfK(3),
        ] {
            assert_eq!(est.reduce_available(&samples), est.reduce(&samples));
        }
        assert_eq!(Estimator::Single.reduce_available(&[4.0]), 4.0);
    }

    #[test]
    fn reduce_available_degrades_to_survivors() {
        assert_eq!(Estimator::MinOfK(5).reduce_available(&[4.0, 2.0]), 2.0);
        assert_eq!(Estimator::MeanOfK(4).reduce_available(&[4.0, 2.0]), 3.0);
        assert_eq!(Estimator::MedianOfK(9).reduce_available(&[7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "zero surviving samples")]
    fn reduce_available_rejects_empty() {
        Estimator::MinOfK(3).reduce_available(&[]);
    }

    #[test]
    #[should_panic(expected = "at most 2 samples")]
    fn reduce_available_rejects_excess() {
        Estimator::MinOfK(2).reduce_available(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn median_tolerates_nan_samples() {
        // a NaN observation (lost/corrupted report) sorts above +inf
        // under total_cmp, so the median still comes from the finite
        // majority instead of panicking
        assert_eq!(Estimator::MedianOfK(3).reduce(&[4.0, f64::NAN, 2.0]), 4.0);
        assert_eq!(
            Estimator::MedianOfK(5).reduce_available(&[9.0, f64::NAN, 1.0]),
            9.0
        );
    }

    #[test]
    fn min_beats_mean_under_outliers() {
        // one giant outlier wrecks the mean but not the min
        let clean = [5.0, 5.1, 4.9];
        let dirty = [5.0, 500.0, 4.9];
        let min_shift =
            (Estimator::MinOfK(3).reduce(&dirty) - Estimator::MinOfK(3).reduce(&clean)).abs();
        let mean_shift =
            (Estimator::MeanOfK(3).reduce(&dirty) - Estimator::MeanOfK(3).reduce(&clean)).abs();
        assert!(min_shift < 1e-12);
        assert!(mean_shift > 100.0);
    }
}

//! Sequential Rank Ordering (Algorithm 1 of the paper).
//!
//! The sequential ancestor of PRO: at each iteration only the *worst*
//! vertex's reflection `r = Π(2v⁰ − vⁿ)` is checked (one evaluation). If
//! it beats `f(v⁰)` the expansion `e = Π(3v⁰ − 2vⁿ)` is checked (one
//! more evaluation) and the whole simplex is then reflected or expanded
//! vertex-by-vertex; otherwise the simplex shrinks. Every evaluation is
//! proposed as its own singleton batch — on a cluster this models one
//! configuration change per time step, which is exactly why the paper
//! parallelised the algorithm.

use crate::optimizer::{HistoryInterpolator, Incumbent, Optimizer};
use crate::pro::simplex_from_vertices;
use harmony_params::init::{initial_simplex, InitialShape, DEFAULT_RELATIVE_SIZE};
use harmony_params::{ParamSpace, Point, Rounding, Simplex, StepKind};
use harmony_recovery::{Checkpoint, CodecError, StateReader, StateWriter};
use harmony_telemetry::{event, Field, Telemetry};

/// Configuration of Sequential Rank Ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SroConfig {
    /// Initial simplex shape (the paper's SRO discussion uses the
    /// minimal simplex; symmetric also works).
    pub shape: InitialShape,
    /// Initial simplex relative size `r`.
    pub relative_size: f64,
    /// Projection rounding rule.
    pub rounding: Rounding,
    /// Collapse tolerance for the stopping criterion.
    pub collapse_tol: f64,
    /// Continuous-neighbour step for the stopping probe.
    pub probe_eps: f64,
}

impl Default for SroConfig {
    fn default() -> Self {
        SroConfig {
            shape: InitialShape::Symmetric,
            relative_size: DEFAULT_RELATIVE_SIZE,
            rounding: Rounding::TowardCenter,
            collapse_tol: 1e-9,
            probe_eps: 0.01,
        }
    }
}

/// What the sequence of singleton evaluations currently being drained
/// will be used for once complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Evaluating the initial vertices.
    Init,
    /// Evaluating the single reflection-check point `r`.
    ReflectCheck,
    /// Evaluating the single expansion-check point `e`.
    ExpandCheck,
    /// Evaluating the full reflected vertex set.
    ReflectAll,
    /// Evaluating the full expanded vertex set.
    ExpandAll,
    /// Evaluating the shrink set.
    Shrink,
    /// Evaluating the stopping-criterion probes.
    Probe,
    /// Finished.
    Done,
}

/// The Sequential Rank Ordering optimizer (proposals are singletons).
pub struct SroOptimizer {
    space: ParamSpace,
    cfg: SroConfig,
    simplex: Simplex,
    values: Vec<f64>,
    phase: Phase,
    /// Points queued for the current phase and values received so far.
    queue: Vec<Point>,
    got: Vec<f64>,
    /// `f(r)` kept across the expansion check.
    reflect_check_val: f64,
    incumbent: Incumbent,
    history: HistoryInterpolator,
    iterations: usize,
    converged: bool,
    /// Reused buffers: rank order, sorted values, raw (unprojected)
    /// transform output. Retaining their capacity keeps the steady-state
    /// phase machine allocation-free.
    scratch_order: Vec<usize>,
    scratch_vals: Vec<f64>,
    scratch_raw: Vec<Point>,
    /// Telemetry handle (disabled by default); the driver owns the
    /// logical clock.
    tel: Telemetry,
    /// Open `sro.iteration` span id (0 when none).
    iter_span: u64,
}

impl SroOptimizer {
    /// Creates SRO over `space`.
    pub fn new(space: ParamSpace, cfg: SroConfig) -> Self {
        let simplex =
            initial_simplex(&space, cfg.shape, cfg.relative_size).expect("valid initial simplex");
        let queue = simplex.vertices().to_vec();
        let history = HistoryInterpolator::new(&space);
        SroOptimizer {
            space,
            cfg,
            simplex,
            values: Vec::new(),
            phase: Phase::Init,
            queue,
            got: Vec::new(),
            reflect_check_val: f64::NAN,
            incumbent: Incumbent::new(),
            history,
            iterations: 0,
            converged: false,
            scratch_order: Vec::new(),
            scratch_vals: Vec::new(),
            scratch_raw: Vec::new(),
            tel: Telemetry::disabled(),
            iter_span: 0,
        }
    }

    /// SRO with default configuration.
    pub fn with_defaults(space: ParamSpace) -> Self {
        SroOptimizer::new(space, SroConfig::default())
    }

    /// Completed simplex-transform iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Attaches a telemetry handle: each iteration becomes an
    /// `sro.iteration` span and every phase transition emits an
    /// `sro.decision` event (mirror of
    /// [`crate::ProOptimizer::set_telemetry`]).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    fn telemetry_iteration_boundary(&mut self) {
        if !self.tel.enabled() {
            return;
        }
        self.close_iter_span();
        self.iter_span = self.tel.span_open(
            "sro.iteration",
            vec![
                Field::new("iter", self.iterations),
                Field::new("k", self.simplex.len()),
                Field::new("best", self.values[0]),
            ],
        );
    }

    fn close_iter_span(&mut self) {
        if self.iter_span != 0 {
            self.tel.span_close(self.iter_span);
            self.iter_span = 0;
        }
    }

    fn best_vertex(&self) -> &Point {
        self.simplex.vertex(0)
    }

    fn project(&self, raw: &Point) -> Point {
        self.space
            .project(raw, self.best_vertex(), self.cfg.rounding)
    }

    /// Refills `queue` with the projected transform of the full simplex,
    /// reusing the raw-transform and queue buffers.
    fn refill_queue_transformed(&mut self, kind: StepKind) {
        let mut raw = std::mem::take(&mut self.scratch_raw);
        self.simplex.transform_around_into(0, kind, &mut raw);
        self.queue.clear();
        for p in &raw {
            let projected = self.project(p);
            self.queue.push(projected);
        }
        self.scratch_raw = raw;
    }

    fn start_phase(&mut self, phase: Phase, queue: Vec<Point>) {
        self.phase = phase;
        self.queue = queue;
        self.got.clear();
    }

    fn enter_iteration(&mut self) {
        let mut order = std::mem::take(&mut self.scratch_order);
        order.clear();
        order.extend(0..self.values.len());
        // total_cmp: a stray NaN estimate sorts above every finite value
        // instead of panicking mid-session
        order.sort_by(|&a, &b| self.values[a].total_cmp(&self.values[b]));
        self.simplex.permute(&order);
        let mut sorted = std::mem::take(&mut self.scratch_vals);
        sorted.clear();
        sorted.extend(order.iter().map(|&i| self.values[i]));
        std::mem::swap(&mut self.values, &mut sorted);
        self.scratch_vals = sorted;
        self.scratch_order = order;

        self.telemetry_iteration_boundary();
        if self.simplex.collapsed(self.cfg.collapse_tol) {
            let probes = self
                .space
                .probe_points(self.best_vertex(), self.cfg.probe_eps);
            if probes.is_empty() {
                event!(
                    self.tel,
                    "sro.decision",
                    action = "converged",
                    iter = self.iterations
                );
                self.close_iter_span();
                self.converged = true;
                self.phase = Phase::Done;
                self.queue.clear();
                self.got.clear();
            } else {
                event!(
                    self.tel,
                    "sro.decision",
                    action = "probe",
                    iter = self.iterations,
                    points = probes.len()
                );
                self.start_phase(Phase::Probe, probes);
            }
        } else {
            // reflection check of the worst vertex only
            let worst = self.simplex.vertex(self.simplex.len() - 1);
            let r = self.project(&worst.reflect_through(self.best_vertex()));
            self.queue.clear();
            self.queue.push(r);
            self.got.clear();
            event!(
                self.tel,
                "sro.decision",
                action = "reflect_check",
                iter = self.iterations,
                best = self.values[0]
            );
            self.phase = Phase::ReflectCheck;
        }
    }

    /// Handles a completed phase (all queued singletons evaluated).
    fn phase_complete(&mut self) {
        match self.phase {
            Phase::Init => {
                self.values.clear();
                self.values.extend_from_slice(&self.got);
                self.enter_iteration();
            }
            Phase::ReflectCheck => {
                let f_r = self.got[0];
                if f_r < self.values[0] {
                    self.reflect_check_val = f_r;
                    let worst = self.simplex.vertex(self.simplex.len() - 1);
                    let e = self.project(&worst.expand_through(self.best_vertex()));
                    self.queue.clear();
                    self.queue.push(e);
                    self.got.clear();
                    event!(
                        self.tel,
                        "sro.decision",
                        action = "expand_check",
                        iter = self.iterations,
                        f_r = f_r
                    );
                    self.phase = Phase::ExpandCheck;
                } else {
                    self.refill_queue_transformed(StepKind::Shrink);
                    self.got.clear();
                    event!(
                        self.tel,
                        "sro.decision",
                        action = "shrink",
                        iter = self.iterations,
                        f_r = f_r
                    );
                    self.phase = Phase::Shrink;
                }
            }
            Phase::ExpandCheck => {
                let f_e = self.got[0];
                let expand = f_e < self.reflect_check_val;
                if expand {
                    self.refill_queue_transformed(StepKind::Expand);
                    self.phase = Phase::ExpandAll;
                } else {
                    self.refill_queue_transformed(StepKind::Reflect);
                    self.phase = Phase::ReflectAll;
                }
                self.got.clear();
                event!(
                    self.tel,
                    "sro.decision",
                    action = if expand { "expand_all" } else { "reflect_all" },
                    iter = self.iterations,
                    f_e = f_e
                );
            }
            Phase::ReflectAll | Phase::ExpandAll | Phase::Shrink => {
                let mut queue = std::mem::take(&mut self.queue);
                for (j, p) in queue.drain(..).enumerate() {
                    self.simplex.set_vertex(j + 1, p);
                    self.values[j + 1] = self.got[j];
                }
                self.queue = queue;
                self.iterations += 1;
                self.enter_iteration();
            }
            Phase::Probe => {
                let min_v = *self
                    .got
                    .iter()
                    .min_by(|a, b| a.total_cmp(b))
                    .expect("non-empty probe set");
                if min_v < self.values[0] {
                    event!(
                        self.tel,
                        "sro.decision",
                        action = "probe_improved",
                        iter = self.iterations,
                        found = min_v
                    );
                    let mut queue = std::mem::take(&mut self.queue);
                    let mut verts = Vec::with_capacity(queue.len() + 1);
                    verts.push(self.simplex.vertex(0).clone());
                    verts.append(&mut queue);
                    self.queue = queue;
                    let mut vals = Vec::with_capacity(self.got.len() + 1);
                    vals.push(self.values[0]);
                    vals.extend_from_slice(&self.got);
                    self.simplex = Simplex::new(verts).expect("probe simplex is valid");
                    self.values = vals;
                    self.iterations += 1;
                    self.enter_iteration();
                } else {
                    event!(
                        self.tel,
                        "sro.decision",
                        action = "converged",
                        iter = self.iterations
                    );
                    self.close_iter_span();
                    self.converged = true;
                    self.phase = Phase::Done;
                }
            }
            Phase::Done => unreachable!("phase_complete after Done"),
        }
    }
}

impl Checkpoint for SroOptimizer {
    fn save_state(&self, w: &mut StateWriter) {
        w.tag("sro");
        w.points(self.simplex.vertices());
        w.f64_slice(&self.values);
        w.u8(match self.phase {
            Phase::Init => 0,
            Phase::ReflectCheck => 1,
            Phase::ExpandCheck => 2,
            Phase::ReflectAll => 3,
            Phase::ExpandAll => 4,
            Phase::Shrink => 5,
            Phase::Probe => 6,
            Phase::Done => 7,
        });
        w.points(&self.queue);
        w.f64_slice(&self.got);
        w.f64(self.reflect_check_val);
        self.incumbent.save_state(w);
        self.history.save_state(w);
        w.usize(self.iterations);
        w.bool(self.converged);
    }

    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), CodecError> {
        r.tag("sro")?;
        self.simplex = simplex_from_vertices(r.points()?)?;
        self.values = r.f64_vec()?;
        self.phase = match r.u8()? {
            0 => Phase::Init,
            1 => Phase::ReflectCheck,
            2 => Phase::ExpandCheck,
            3 => Phase::ReflectAll,
            4 => Phase::ExpandAll,
            5 => Phase::Shrink,
            6 => Phase::Probe,
            7 => Phase::Done,
            b => return Err(CodecError::BadValue(format!("bad sro phase {b}"))),
        };
        self.queue = r.points()?;
        self.got = r.f64_vec()?;
        self.reflect_check_val = r.f64()?;
        self.incumbent.restore_state(r)?;
        self.history.restore_state(r)?;
        self.iterations = r.usize()?;
        self.converged = r.bool()?;
        self.iter_span = 0;
        Ok(())
    }
}

impl Optimizer for SroOptimizer {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Vec<Point> {
        if self.phase == Phase::Done {
            return Vec::new();
        }
        vec![self.queue[self.got.len()].clone()]
    }

    fn observe(&mut self, values: &[f64]) {
        assert_eq!(values.len(), 1, "SRO evaluates one point at a time");
        let v = values[0];
        assert!(v.is_finite(), "observe: non-finite objective value");
        let point = &self.queue[self.got.len()];
        self.incumbent.offer(point, v);
        self.history.record(point, v);
        self.got.push(v);
        if self.got.len() == self.queue.len() {
            self.phase_complete();
        }
    }

    fn observe_partial(&mut self, values: &[Option<f64>]) {
        assert_eq!(values.len(), 1, "SRO evaluates one point at a time");
        match values[0] {
            Some(v) => self.observe(&[v]),
            None => {
                // lost report: substitute the performance-database
                // interpolation over the measured history (synthetic
                // values are not recorded back or offered as incumbents)
                let point = &self.queue[self.got.len()];
                let v = self
                    .history
                    .estimate(point)
                    .expect("history has at least one measurement to interpolate from");
                self.got.push(v);
                if self.got.len() == self.queue.len() {
                    self.phase_complete();
                }
            }
        }
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.incumbent.get()
    }

    fn recommendation(&self) -> Option<(Point, f64)> {
        if self.values.is_empty() {
            self.incumbent.get()
        } else {
            Some((self.simplex.vertex(0).clone(), self.values[0]))
        }
    }

    fn converged(&self) -> bool {
        self.converged
    }

    fn name(&self) -> &str {
        "sro"
    }

    fn as_checkpoint(&self) -> Option<&dyn Checkpoint> {
        Some(self)
    }

    fn as_checkpoint_mut(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_params::ParamDef;

    fn lattice_space(lo: i64, hi: i64) -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::integer("x", lo, hi, 1).unwrap(),
            ParamDef::integer("y", lo, hi, 1).unwrap(),
        ])
        .unwrap()
    }

    fn drive<F: Fn(&Point) -> f64>(opt: &mut SroOptimizer, f: F, max_evals: usize) -> usize {
        let mut evals = 0;
        while evals < max_evals {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            assert_eq!(batch.len(), 1, "SRO proposals are singletons");
            evals += 1;
            opt.observe(&[f(&batch[0])]);
        }
        evals
    }

    #[test]
    fn proposals_are_singletons_and_converge() {
        let space = lattice_space(-30, 30);
        let mut opt = SroOptimizer::with_defaults(space);
        drive(&mut opt, |p| p[0] * p[0] + p[1] * p[1] + 1.0, 10_000);
        assert!(opt.converged());
        let (best, val) = opt.best().unwrap();
        assert_eq!(best.as_slice(), &[0.0, 0.0]);
        assert_eq!(val, 1.0);
    }

    #[test]
    fn finds_shifted_minimum() {
        let space = lattice_space(0, 60);
        let mut opt = SroOptimizer::with_defaults(space);
        drive(
            &mut opt,
            |p| (p[0] - 41.0).abs() + (p[1] - 8.0).abs(),
            10_000,
        );
        assert!(opt.converged());
        assert_eq!(opt.best().unwrap().0.as_slice(), &[41.0, 8.0]);
    }

    #[test]
    fn sequential_uses_more_batches_than_pro() {
        // the motivation for PRO: same family, but SRO needs ~n times
        // more cluster time steps per iteration
        let space = lattice_space(-30, 30);
        let f = |p: &Point| (p[0] - 5.0).powi(2) + (p[1] + 9.0).powi(2);
        let mut sro = SroOptimizer::with_defaults(space.clone());
        let mut sro_batches = 0;
        while sro_batches < 100_000 {
            let b = sro.propose();
            if b.is_empty() {
                break;
            }
            sro_batches += 1;
            sro.observe(&[f(&b[0])]);
        }
        let mut pro = crate::pro::ProOptimizer::with_defaults(space);
        let mut pro_batches = 0;
        loop {
            let b = pro.propose();
            if b.is_empty() {
                break;
            }
            pro_batches += 1;
            let vals: Vec<f64> = b.iter().map(f).collect();
            pro.observe(&vals);
        }
        assert!(
            sro_batches > 2 * pro_batches,
            "sro={sro_batches} pro={pro_batches}"
        );
    }

    #[test]
    fn all_proposals_admissible() {
        let space = ParamSpace::new(vec![
            ParamDef::integer("x", 0, 40, 4).unwrap(),
            ParamDef::levels("y", vec![1.0, 3.0, 7.0]).unwrap(),
        ])
        .unwrap();
        let mut opt = SroOptimizer::with_defaults(space.clone());
        for _ in 0..2_000 {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            assert!(space.is_admissible(&batch[0]));
            opt.observe(&[(batch[0][0] - 20.0).powi(2) + batch[0][1]]);
        }
    }

    #[test]
    fn one_dimensional() {
        let space = ParamSpace::new(vec![ParamDef::integer("x", -50, 50, 1).unwrap()]).unwrap();
        let mut opt = SroOptimizer::with_defaults(space);
        drive(&mut opt, |p| (p[0] + 17.0).powi(2), 10_000);
        assert!(opt.converged());
        assert_eq!(opt.best().unwrap().0.as_slice(), &[-17.0]);
    }

    #[test]
    fn observe_partial_substitutes_lost_singletons() {
        // drop every 4th report after the initial vertices; the history
        // interpolation must keep the phase machine running and the
        // search must still reach the optimum of a smooth bowl
        let space = lattice_space(-20, 20);
        let f = |p: &Point| (p[0] - 6.0).powi(2) + (p[1] - 2.0).powi(2);
        let mut opt = SroOptimizer::with_defaults(space);
        let init_len = opt.queue.len();
        let mut k = 0usize;
        for _ in 0..20_000 {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            k += 1;
            if k > init_len && k.is_multiple_of(4) {
                opt.observe_partial(&[None]);
            } else {
                opt.observe_partial(&[Some(f(&batch[0]))]);
            }
        }
        let (best, _) = opt.best().unwrap();
        assert_eq!(best.as_slice(), &[6.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one measurement")]
    fn observe_partial_needs_some_history() {
        let space = lattice_space(-5, 5);
        let mut opt = SroOptimizer::with_defaults(space);
        let _ = opt.propose();
        opt.observe_partial(&[None]);
    }

    #[test]
    #[should_panic(expected = "one point at a time")]
    fn multi_observation_rejected() {
        let space = lattice_space(-5, 5);
        let mut opt = SroOptimizer::with_defaults(space);
        let _ = opt.propose();
        opt.observe(&[1.0, 2.0]);
    }
}

//! Multi-start wrapping for any optimizer: when the inner search
//! converges, restart it from a fresh region and keep the best result
//! across starts.
//!
//! Motivation: PRO is a *local* method — on deceptive surfaces (e.g. a
//! cache-reuse gradient pointing away from a distant better basin, see
//! `examples/kernel_tuning.rs`) it converges to the basin it started
//! in. Restarts buy global coverage while keeping the cheap transient
//! behaviour that makes direct search suitable for on-line tuning —
//! a middle ground between plain PRO and the §2 randomized methods.
//!
//! Restart centers are drawn uniformly from the admissible region; the
//! wrapper is itself an [`Optimizer`], so every driver (fixed-K,
//! adaptive, threaded server) can use it unchanged.

use crate::optimizer::{Incumbent, Optimizer};
use harmony_params::{ParamSpace, Point};
use harmony_recovery::{Checkpoint, CodecError, StateReader, StateWriter};
use harmony_variability::seeded_rng;
use rand::rngs::SmallRng;
use rand::Rng;

/// Builds a fresh inner optimizer around the given start center.
///
/// The factory receives the restart index and a suggested center point;
/// implementations typically build a `ProOptimizer` whose initial
/// simplex is translated to that center (or simply ignore the center
/// and use their own initialisation).
pub type OptimizerFactory = Box<dyn FnMut(usize, &Point) -> Box<dyn Optimizer>>;

/// An [`Optimizer`] that runs its inner optimizer to convergence, then
/// restarts it from a random admissible point, up to `max_starts` times,
/// keeping the global best.
pub struct Restarting {
    space: ParamSpace,
    factory: OptimizerFactory,
    inner: Box<dyn Optimizer>,
    rng: SmallRng,
    starts: usize,
    max_starts: usize,
    incumbent: Incumbent,
    name: String,
    /// Factory arguments that built the *current* inner optimizer, so a
    /// checkpoint restore can rebuild it before restoring its state.
    current_start: usize,
    current_center: Point,
}

impl Restarting {
    /// Creates a restarting wrapper; the first start uses the space
    /// center (the paper's §3.2.3 initialisation), later starts draw
    /// uniform random centers.
    ///
    /// # Panics
    /// Panics when `max_starts == 0`.
    pub fn new(
        space: ParamSpace,
        max_starts: usize,
        seed: u64,
        mut factory: OptimizerFactory,
    ) -> Self {
        assert!(max_starts >= 1, "need at least one start");
        let center = space.center();
        let inner = factory(0, &center);
        let name = format!("restarting-{}", inner.name());
        Restarting {
            space,
            factory,
            inner,
            rng: seeded_rng(seed),
            starts: 1,
            max_starts,
            incumbent: Incumbent::new(),
            name,
            current_start: 0,
            current_center: center,
        }
    }

    /// Starts consumed so far (1 = still in the first).
    pub fn starts(&self) -> usize {
        self.starts
    }

    fn random_center(&mut self) -> Point {
        let unit: Vec<f64> = (0..self.space.dims())
            .map(|_| self.rng.random::<f64>())
            .collect();
        self.space.point_from_unit(&unit)
    }
}

impl Checkpoint for Restarting {
    fn save_state(&self, w: &mut StateWriter) {
        w.tag("restart");
        w.u64_slice(&self.rng.state());
        w.usize(self.starts);
        w.usize(self.current_start);
        w.point(&self.current_center);
        self.incumbent.save_state(w);
        self.inner
            .as_checkpoint()
            .expect("restarting wrapper checkpoints require a checkpointable inner optimizer")
            .save_state(w);
    }

    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), CodecError> {
        r.tag("restart")?;
        let state: [u64; 4] = r
            .u64_vec()?
            .try_into()
            .map_err(|_| CodecError::BadValue("bad rng state length".into()))?;
        self.rng = SmallRng::from_state(state);
        self.starts = r.usize()?;
        self.current_start = r.usize()?;
        self.current_center = r.point()?;
        self.incumbent.restore_state(r)?;
        // rebuild the inner optimizer exactly as the factory originally
        // did, then restore its internal state on top
        self.inner = (self.factory)(self.current_start, &self.current_center);
        match self.inner.as_checkpoint_mut() {
            Some(c) => c.restore_state(r),
            None => Err(CodecError::BadValue(
                "factory built a non-checkpointable optimizer".into(),
            )),
        }
    }
}

impl Optimizer for Restarting {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Vec<Point> {
        loop {
            let batch = self.inner.propose();
            if !batch.is_empty() {
                return batch;
            }
            if self.starts >= self.max_starts {
                return Vec::new();
            }
            let center = self.random_center();
            self.inner = (self.factory)(self.starts, &center);
            self.current_start = self.starts;
            self.current_center = center;
            self.starts += 1;
        }
    }

    fn observe(&mut self, values: &[f64]) {
        // mirror the inner proposal so the incumbent sees every estimate
        let batch = self.inner.propose();
        for (p, &v) in batch.iter().zip(values) {
            self.incumbent.offer(p, v);
        }
        self.inner.observe(values);
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.incumbent.get()
    }

    fn recommendation(&self) -> Option<(Point, f64)> {
        // deploy the best across all starts: the inner optimizer's
        // current recommendation competes with earlier starts' results
        match (self.incumbent.get(), self.inner.recommendation()) {
            (Some((gp, gv)), Some((ip, iv))) => {
                if iv <= gv {
                    Some((ip, iv))
                } else {
                    Some((gp, gv))
                }
            }
            (global, inner) => inner.or(global),
        }
    }

    fn converged(&self) -> bool {
        self.starts >= self.max_starts && self.inner.converged()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_checkpoint(&self) -> Option<&dyn Checkpoint> {
        // checkpointable exactly when the current inner optimizer is
        self.inner.as_checkpoint().map(|_| self as &dyn Checkpoint)
    }

    fn as_checkpoint_mut(&mut self) -> Option<&mut dyn Checkpoint> {
        if self.inner.as_checkpoint().is_some() {
            Some(self)
        } else {
            None
        }
    }
}

/// Convenience: restarting PRO with translated initial simplexes.
pub fn restarting_pro(
    space: ParamSpace,
    cfg: crate::pro::ProConfig,
    max_starts: usize,
    seed: u64,
) -> Restarting {
    let factory_space = space.clone();
    Restarting::new(
        space,
        max_starts,
        seed,
        Box::new(move |start, center| {
            let mut pro = Box::new(crate::pro::ProOptimizer::new(factory_space.clone(), cfg));
            if start > 0 {
                pro.recenter(center);
            }
            pro
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pro::{ProConfig, ProOptimizer};
    use harmony_params::ParamDef;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::integer("x", 0, 40, 1).unwrap(),
            ParamDef::integer("y", 0, 40, 1).unwrap(),
        ])
        .unwrap()
    }

    /// Deceptive objective: broad shallow basin at (30, 30), deep narrow
    /// basin at (4, 4).
    fn deceptive(p: &Point) -> f64 {
        let shallow = 5.0 + 0.02 * ((p[0] - 30.0).powi(2) + (p[1] - 30.0).powi(2));
        let deep = 1.0 + 2.0 * ((p[0] - 4.0).powi(2) + (p[1] - 4.0).powi(2));
        shallow.min(deep)
    }

    fn drive<O: Optimizer + ?Sized>(opt: &mut O, max_batches: usize) {
        for _ in 0..max_batches {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            let vals: Vec<f64> = batch.iter().map(deceptive).collect();
            opt.observe(&vals);
        }
    }

    #[test]
    fn single_pro_usually_misses_the_deep_basin() {
        let mut pro = ProOptimizer::with_defaults(space());
        drive(&mut pro, 500);
        let (_, v) = pro.recommendation().unwrap();
        assert!(
            v > 3.0,
            "plain PRO should land in the shallow basin, got {v}"
        );
    }

    #[test]
    fn restarts_find_the_deep_basin() {
        let mut multi = restarting_pro(space(), ProConfig::default(), 12, 7);
        drive(&mut multi, 5_000);
        assert!(multi.converged());
        assert!(multi.starts() == 12);
        let (p, v) = multi.recommendation().unwrap();
        assert!(
            v <= 1.0 + 1e-9,
            "restarts should reach the deep basin, got {v} at {p:?}"
        );
    }

    #[test]
    fn incumbent_spans_starts() {
        let mut multi = restarting_pro(space(), ProConfig::default(), 4, 9);
        drive(&mut multi, 2_000);
        let (_, best) = multi.best().unwrap();
        let (_, rec) = multi.recommendation().unwrap();
        // the recommendation never loses to what some start actually found
        assert!(rec <= best + 1e-9 || rec <= 5.5, "rec={rec} best={best}");
    }

    #[test]
    fn one_start_degenerates_to_inner() {
        let mut single = restarting_pro(space(), ProConfig::default(), 1, 3);
        let mut plain = ProOptimizer::with_defaults(space());
        for _ in 0..400 {
            let a = single.propose();
            let b = plain.propose();
            assert_eq!(a, b);
            if a.is_empty() {
                break;
            }
            let vals: Vec<f64> = a.iter().map(deceptive).collect();
            single.observe(&vals);
            plain.observe(&vals);
        }
        assert_eq!(single.converged(), plain.converged());
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn zero_starts_rejected() {
        restarting_pro(space(), ProConfig::default(), 0, 1);
    }

    #[test]
    fn checkpoint_restores_start_index_and_incumbent() {
        // run past at least one restart, snapshot, keep driving; a fresh
        // wrapper restored from the snapshot must continue identically
        let mut multi = restarting_pro(space(), ProConfig::default(), 6, 7);
        drive(&mut multi, 120);
        assert!(multi.starts() > 1, "want a mid-restart snapshot");
        let bytes = harmony_recovery::save_to_vec(
            multi
                .as_checkpoint()
                .expect("restarting pro is checkpointable"),
        );
        let snap_starts = multi.starts();
        let snap_best = multi.best();

        let mut resumed = restarting_pro(space(), ProConfig::default(), 6, 7);
        harmony_recovery::restore_from_slice(
            resumed.as_checkpoint_mut().expect("checkpointable"),
            &bytes,
        )
        .unwrap();
        assert_eq!(resumed.starts(), snap_starts);
        assert_eq!(resumed.best(), snap_best);

        // both copies must propose and evolve identically from here on,
        // including through further RNG-driven restarts
        for _ in 0..2_000 {
            let a = multi.propose();
            let b = resumed.propose();
            assert_eq!(a, b);
            if a.is_empty() {
                break;
            }
            let vals: Vec<f64> = a.iter().map(deceptive).collect();
            multi.observe(&vals);
            resumed.observe(&vals);
        }
        assert_eq!(multi.starts(), resumed.starts());
        assert_eq!(multi.recommendation(), resumed.recommendation());
    }
}

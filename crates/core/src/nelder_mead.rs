//! The Nelder–Mead simplex method (§3.1) — the optimizer originally used
//! by Active Harmony, included as the baseline whose shortcomings
//! motivate rank ordering.
//!
//! For `N` variables the method keeps `N+1` vertices. Each iteration
//! replaces the worst vertex `v_N` with a point on the line
//! `v_N + α(c − v_N)` through the centroid `c` of the other vertices
//! (eq. 3), trying reflection (`α = 2`), expansion (`α = 3`), and
//! contraction (`α = 0.5`), and shrinking the whole simplex around the
//! best point when none helps.
//!
//! Unlike rank ordering, acceptance is relative to the *worst* vertex,
//! the polytope can deform arbitrarily (and degenerate — see
//! [`NelderMead::simplex_rank`]), and the method is inherently
//! sequential: proposals are singletons except for the shrink step.

use crate::optimizer::{HistoryInterpolator, Incumbent, Optimizer};
use crate::pro::simplex_from_vertices;
use harmony_params::init::{initial_simplex, InitialShape, DEFAULT_RELATIVE_SIZE};
use harmony_params::{ParamSpace, Point, Rounding, Simplex};
use harmony_recovery::{Checkpoint, CodecError, StateReader, StateWriter};

/// Configuration of the Nelder–Mead baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadConfig {
    /// Initial simplex relative size `r`.
    pub relative_size: f64,
    /// Projection rounding (needed for discrete parameters; classical
    /// NM has no projection at all).
    pub rounding: Rounding,
    /// Simplex diameter below which the search reports convergence.
    pub collapse_tol: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            relative_size: DEFAULT_RELATIVE_SIZE,
            rounding: Rounding::Nearest,
            collapse_tol: 1e-9,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Init,
    Reflect,
    Expand,
    Contract,
    Shrink,
    Done,
}

/// The Nelder–Mead optimizer over a (possibly discrete) parameter space.
pub struct NelderMead {
    space: ParamSpace,
    cfg: NelderMeadConfig,
    simplex: Simplex,
    values: Vec<f64>,
    phase: Phase,
    queue: Vec<Point>,
    got: Vec<f64>,
    /// `f(r)` carried from the reflection to the expansion/contraction
    /// decision, together with the reflected point.
    reflected: Option<(Point, f64)>,
    incumbent: Incumbent,
    history: HistoryInterpolator,
    iterations: usize,
    converged: bool,
}

impl NelderMead {
    /// Creates Nelder–Mead over `space` (always a minimal `N+1`-vertex
    /// simplex, per the classical method).
    pub fn new(space: ParamSpace, cfg: NelderMeadConfig) -> Self {
        let simplex = initial_simplex(&space, InitialShape::Minimal, cfg.relative_size)
            .expect("valid initial simplex");
        let queue = simplex.vertices().to_vec();
        let history = HistoryInterpolator::new(&space);
        NelderMead {
            space,
            cfg,
            simplex,
            values: Vec::new(),
            phase: Phase::Init,
            queue,
            got: Vec::new(),
            reflected: None,
            incumbent: Incumbent::new(),
            history,
            iterations: 0,
            converged: false,
        }
    }

    /// Nelder–Mead with defaults.
    pub fn with_defaults(space: ParamSpace) -> Self {
        NelderMead::new(space, NelderMeadConfig::default())
    }

    /// Completed iterations (worst-vertex replacements or shrinks).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Rank of the current simplex — exposes the degeneracy failure mode
    /// discussed in §3.1.
    pub fn simplex_rank(&self, tol: f64) -> usize {
        self.simplex.rank(tol)
    }

    fn project(&self, raw: &Point) -> Point {
        self.space
            .project(raw, self.simplex.vertex(0), self.cfg.rounding)
    }

    /// Point on the line `v_N + α(c − v_N)` (eq. 3 context), projected.
    fn line_point(&self, alpha: f64) -> Point {
        let worst = self.simplex.vertex(self.simplex.len() - 1);
        let c = self.simplex.centroid_excluding(self.simplex.len() - 1);
        // v_N + α(c − v_N) = (1−α)·v_N + α·c
        let raw = Point::affine(&[(1.0 - alpha, worst), (alpha, &c)]);
        self.project(&raw)
    }

    fn start_phase(&mut self, phase: Phase, queue: Vec<Point>) {
        self.phase = phase;
        self.queue = queue;
        self.got = Vec::new();
    }

    fn enter_iteration(&mut self) {
        let mut order: Vec<usize> = (0..self.values.len()).collect();
        // total_cmp: a stray NaN estimate sorts above every finite value
        // instead of panicking mid-session
        order.sort_by(|&a, &b| self.values[a].total_cmp(&self.values[b]));
        self.simplex.permute(&order);
        self.values = order.iter().map(|&i| self.values[i]).collect();

        if self.simplex.collapsed(self.cfg.collapse_tol) {
            self.converged = true;
            self.phase = Phase::Done;
            self.queue = Vec::new();
        } else {
            let r = self.line_point(2.0);
            self.start_phase(Phase::Reflect, vec![r]);
        }
    }

    fn replace_worst(&mut self, point: Point, value: f64) {
        let worst = self.simplex.len() - 1;
        self.simplex.set_vertex(worst, point);
        self.values[worst] = value;
        self.iterations += 1;
        self.enter_iteration();
    }

    fn phase_complete(&mut self) {
        let queue = std::mem::take(&mut self.queue);
        let got = std::mem::take(&mut self.got);
        match self.phase {
            Phase::Init => {
                self.values = got;
                self.enter_iteration();
            }
            Phase::Reflect => {
                let (r, f_r) = (queue.into_iter().next().expect("one point"), got[0]);
                let worst_val = *self.values.last().expect("non-empty simplex");
                if f_r < self.values[0] {
                    self.reflected = Some((r, f_r));
                    let e = self.line_point(3.0);
                    self.start_phase(Phase::Expand, vec![e]);
                } else if f_r < worst_val {
                    self.replace_worst(r, f_r);
                } else {
                    self.reflected = Some((r, f_r));
                    let co = self.line_point(0.5);
                    self.start_phase(Phase::Contract, vec![co]);
                }
            }
            Phase::Expand => {
                let (e, f_e) = (queue.into_iter().next().expect("one point"), got[0]);
                let (r, f_r) = self.reflected.take().expect("reflection recorded");
                if f_e < f_r {
                    self.replace_worst(e, f_e);
                } else {
                    self.replace_worst(r, f_r);
                }
            }
            Phase::Contract => {
                let (co, f_co) = (queue.into_iter().next().expect("one point"), got[0]);
                let worst_val = *self.values.last().expect("non-empty simplex");
                self.reflected = None;
                if f_co < worst_val {
                    self.replace_worst(co, f_co);
                } else {
                    // shrink the whole simplex around the best point
                    let shrinks: Vec<Point> = self
                        .simplex
                        .transform_around(0, harmony_params::StepKind::Shrink)
                        .iter()
                        .map(|p| self.project(p))
                        .collect();
                    self.start_phase(Phase::Shrink, shrinks);
                }
            }
            Phase::Shrink => {
                for (j, (p, v)) in queue.into_iter().zip(got).enumerate() {
                    self.simplex.set_vertex(j + 1, p);
                    self.values[j + 1] = v;
                }
                self.iterations += 1;
                self.enter_iteration();
            }
            Phase::Done => unreachable!("phase_complete after Done"),
        }
    }
}

impl Checkpoint for NelderMead {
    fn save_state(&self, w: &mut StateWriter) {
        w.tag("nm");
        w.points(self.simplex.vertices());
        w.f64_slice(&self.values);
        w.u8(match self.phase {
            Phase::Init => 0,
            Phase::Reflect => 1,
            Phase::Expand => 2,
            Phase::Contract => 3,
            Phase::Shrink => 4,
            Phase::Done => 5,
        });
        w.points(&self.queue);
        w.f64_slice(&self.got);
        match &self.reflected {
            Some((p, v)) => {
                w.bool(true);
                w.point(p);
                w.f64(*v);
            }
            None => w.bool(false),
        }
        self.incumbent.save_state(w);
        self.history.save_state(w);
        w.usize(self.iterations);
        w.bool(self.converged);
    }

    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), CodecError> {
        r.tag("nm")?;
        self.simplex = simplex_from_vertices(r.points()?)?;
        self.values = r.f64_vec()?;
        self.phase = match r.u8()? {
            0 => Phase::Init,
            1 => Phase::Reflect,
            2 => Phase::Expand,
            3 => Phase::Contract,
            4 => Phase::Shrink,
            5 => Phase::Done,
            b => return Err(CodecError::BadValue(format!("bad nm phase {b}"))),
        };
        self.queue = r.points()?;
        self.got = r.f64_vec()?;
        self.reflected = if r.bool()? {
            Some((r.point()?, r.f64()?))
        } else {
            None
        };
        self.incumbent.restore_state(r)?;
        self.history.restore_state(r)?;
        self.iterations = r.usize()?;
        self.converged = r.bool()?;
        Ok(())
    }
}

impl Optimizer for NelderMead {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Vec<Point> {
        if self.phase == Phase::Done {
            return Vec::new();
        }
        vec![self.queue[self.got.len()].clone()]
    }

    fn observe(&mut self, values: &[f64]) {
        assert_eq!(values.len(), 1, "Nelder-Mead evaluates one point at a time");
        let v = values[0];
        assert!(v.is_finite(), "observe: non-finite objective value");
        let point = &self.queue[self.got.len()];
        self.incumbent.offer(point, v);
        self.history.record(point, v);
        self.got.push(v);
        if self.got.len() == self.queue.len() {
            self.phase_complete();
        }
    }

    fn observe_partial(&mut self, values: &[Option<f64>]) {
        assert_eq!(values.len(), 1, "Nelder-Mead evaluates one point at a time");
        match values[0] {
            Some(v) => self.observe(&[v]),
            None => {
                // lost report: substitute the performance-database
                // interpolation over the measured history (synthetic
                // values are not recorded back or offered as incumbents)
                let point = &self.queue[self.got.len()];
                let v = self
                    .history
                    .estimate(point)
                    .expect("history has at least one measurement to interpolate from");
                self.got.push(v);
                if self.got.len() == self.queue.len() {
                    self.phase_complete();
                }
            }
        }
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.incumbent.get()
    }

    fn recommendation(&self) -> Option<(Point, f64)> {
        if self.values.is_empty() {
            self.incumbent.get()
        } else {
            Some((self.simplex.vertex(0).clone(), self.values[0]))
        }
    }

    fn converged(&self) -> bool {
        self.converged
    }

    fn name(&self) -> &str {
        "nelder-mead"
    }

    fn as_checkpoint(&self) -> Option<&dyn Checkpoint> {
        Some(self)
    }

    fn as_checkpoint_mut(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_params::ParamDef;

    fn cont_space(n: usize) -> ParamSpace {
        ParamSpace::new(
            (0..n)
                .map(|i| ParamDef::continuous(format!("x{i}"), -10.0, 10.0).unwrap())
                .collect(),
        )
        .unwrap()
    }

    fn drive<F: Fn(&Point) -> f64>(opt: &mut NelderMead, f: F, max_evals: usize) {
        for _ in 0..max_evals {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            opt.observe(&[f(&batch[0])]);
        }
    }

    #[test]
    fn descends_continuous_bowl() {
        let mut opt = NelderMead::with_defaults(cont_space(2));
        drive(&mut opt, |p| p[0] * p[0] + p[1] * p[1], 2_000);
        let (best, val) = opt.best().unwrap();
        assert!(val < 0.5, "val={val} at {best:?}");
    }

    #[test]
    fn works_on_integer_lattice() {
        let space = ParamSpace::new(vec![
            ParamDef::integer("x", -20, 20, 1).unwrap(),
            ParamDef::integer("y", -20, 20, 1).unwrap(),
        ])
        .unwrap();
        let mut opt = NelderMead::with_defaults(space);
        drive(
            &mut opt,
            |p| (p[0] - 4.0).powi(2) + (p[1] + 3.0).powi(2),
            4_000,
        );
        let (_, val) = opt.best().unwrap();
        // NM on lattices is unreliable (the point of the paper); accept
        // any reasonable descent
        assert!(val <= 9.0, "val={val}");
    }

    #[test]
    fn proposals_are_singletons() {
        let mut opt = NelderMead::with_defaults(cont_space(3));
        for _ in 0..50 {
            let b = opt.propose();
            if b.is_empty() {
                break;
            }
            assert_eq!(b.len(), 1);
            opt.observe(&[b[0].iter().map(|c| c * c).sum()]);
        }
    }

    #[test]
    fn simplex_rank_is_full_at_start() {
        let opt = NelderMead::with_defaults(cont_space(3));
        assert_eq!(opt.simplex_rank(1e-9), 3);
    }

    #[test]
    fn mckinnon_style_deformation_can_degenerate() {
        // On a discrete lattice with nearest rounding the NM polytope can
        // lose rank — the §3.1 failure mode. We only assert the rank
        // diagnostic is usable mid-run (value in 0..=N).
        let space = ParamSpace::new(vec![
            ParamDef::integer("x", -5, 5, 1).unwrap(),
            ParamDef::integer("y", -5, 5, 1).unwrap(),
        ])
        .unwrap();
        let mut opt = NelderMead::with_defaults(space);
        drive(&mut opt, |p| p[0].abs() + p[1].abs(), 200);
        assert!(opt.simplex_rank(1e-9) <= 2);
    }

    #[test]
    fn converges_and_stops() {
        let mut opt = NelderMead::with_defaults(cont_space(1));
        drive(&mut opt, |p| (p[0] - 2.0).powi(2), 5_000);
        assert!(opt.converged());
        assert!(opt.propose().is_empty());
        assert!((opt.best().unwrap().0[0] - 2.0).abs() < 0.5);
    }

    #[test]
    fn observe_partial_substitutes_lost_singletons() {
        let mut opt = NelderMead::with_defaults(cont_space(2));
        let init_len = opt.queue.len();
        let f = |p: &Point| p[0] * p[0] + p[1] * p[1];
        let mut k = 0usize;
        for _ in 0..2_000 {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            k += 1;
            if k > init_len && k.is_multiple_of(4) {
                opt.observe_partial(&[None]);
            } else {
                opt.observe_partial(&[Some(f(&batch[0]))]);
            }
        }
        let (best, val) = opt.best().unwrap();
        assert!(val < 1.0, "val={val} at {best:?}");
    }

    #[test]
    fn expansion_improves_on_steep_slopes() {
        let mut opt = NelderMead::with_defaults(cont_space(2));
        drive(&mut opt, |p| 100.0 - p[0] - p[1], 2_000);
        let (best, _) = opt.best().unwrap();
        // should walk toward the (10, 10) corner
        assert!(best[0] > 5.0 && best[1] > 5.0, "best={best:?}");
    }
}

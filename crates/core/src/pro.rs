//! Parallel Rank Ordering (Algorithm 2 of the paper).
//!
//! PRO maintains a simplex of `m` vertices (the paper recommends the
//! symmetric `2N`-vertex simplex, §3.2.3). Each iteration:
//!
//! 1. **Reflection step** — reorder so `f(v⁰) ≤ … ≤ f(vⁿ)`, then
//!    evaluate all `n` reflections `rʲ = Π(2v⁰ − vʲ)` *in parallel*.
//! 2. If the best reflection beats `f(v⁰)`: **expansion check** —
//!    evaluate the single most promising expansion
//!    `e = Π(3v⁰ − 2vˡ)`, `l = argmin f(rʲ)`. The paper does this
//!    deliberately instead of expanding everything at once: "there are
//!    some expansion points with very poor performance that can slow
//!    down the algorithm", and on a barrier-synchronised cluster one bad
//!    evaluation stalls everyone.
//! 3. If the check succeeds, the **expansion step** evaluates all
//!    `eʲ = Π(3v⁰ − 2vʲ)` in parallel and accepts them; otherwise the
//!    reflected points are accepted.
//! 4. If no reflection beats `f(v⁰)`, the simplex **shrinks** around the
//!    best vertex: `vʲ ← Π(½(v⁰ + vʲ))`.
//!
//! Reflection/expansion are accepted only when they beat the *best*
//! point found so far — stricter than Nelder–Mead's "better than the
//! worst vertex" rule, and the reason PRO is in the GSS class with
//! guaranteed convergence behaviour (§3.2, Kolda et al.).
//!
//! When every vertex collapses onto `v⁰` (exactly, for discrete
//! parameters — the toward-center projection guarantees this happens in
//! finitely many shrinks), the **stopping criterion** (§3.2.2) probes the
//! `2N` lattice neighbours of `v⁰`; if none improves, `v⁰` is a local
//! minimum and the search stops, otherwise PRO continues with the probe
//! simplex (we keep `v⁰` in it so the incumbent stays a vertex).

use crate::optimizer::{HistoryInterpolator, Incumbent, Optimizer};
use harmony_params::init::{initial_simplex, InitialShape, DEFAULT_RELATIVE_SIZE};
use harmony_params::{ParamSpace, Point, Rounding, Simplex, StepKind};
use harmony_recovery::{Checkpoint, CodecError, StateReader, StateWriter};
use harmony_telemetry::{event, Field, Telemetry};

/// Writes a `(point, value)` list (a carried reflection set).
pub(crate) fn write_pairs(w: &mut StateWriter, pairs: &[(Point, f64)]) {
    w.usize(pairs.len());
    for (p, v) in pairs {
        w.point(p);
        w.f64(*v);
    }
}

/// Reads a [`write_pairs`] list.
pub(crate) fn read_pairs(r: &mut StateReader) -> Result<Vec<(Point, f64)>, CodecError> {
    let n = r.usize()?;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push((r.point()?, r.f64()?));
    }
    Ok(out)
}

/// Rebuilds a simplex from checkpointed vertices.
pub(crate) fn simplex_from_vertices(verts: Vec<Point>) -> Result<Simplex, CodecError> {
    Simplex::new(verts).map_err(|e| CodecError::BadValue(format!("bad simplex: {e:?}")))
}

/// Tunable knobs of the PRO algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProConfig {
    /// Initial simplex shape; the paper finds [`InitialShape::Symmetric`]
    /// ("2N vertices") much better on discrete problems (Fig. 9).
    pub shape: InitialShape,
    /// Initial simplex relative size `r` (§3.2.3; default 0.2).
    pub relative_size: f64,
    /// Projection rounding rule; [`Rounding::TowardCenter`] is the
    /// paper's operator, plain nearest is the ablation alternative.
    pub rounding: Rounding,
    /// When true (Algorithm 2), probe the single most promising
    /// expansion point before committing the whole parallel expansion
    /// step; when false, evaluate all expansions immediately and keep
    /// whichever of {reflections, expansions} is better (ablation A1).
    pub expansion_check: bool,
    /// Chebyshev diameter below which the simplex counts as collapsed
    /// (exact 0 is reached on discrete lattices).
    pub collapse_tol: f64,
    /// Relative neighbour step for continuous parameters in the
    /// stopping-criterion probe.
    pub probe_eps: f64,
    /// Continuous-monitoring mode: when the §3.2.2 stopping criterion
    /// finds no improving neighbour, do not stop — keep re-probing the
    /// neighbourhood every phase (the optimizer never reports
    /// convergence; the driver's step budget ends the session). This
    /// models an Active-Harmony deployment that keeps verifying the
    /// tuned point so it can react if conditions change, and is the
    /// reading of the §6 simulation under which `NTT(ρ=0)` is exactly
    /// linear in the sample count.
    pub continuous: bool,
}

impl Default for ProConfig {
    fn default() -> Self {
        ProConfig {
            shape: InitialShape::Symmetric,
            relative_size: DEFAULT_RELATIVE_SIZE,
            rounding: Rounding::TowardCenter,
            expansion_check: true,
            collapse_tol: 1e-9,
            probe_eps: 0.01,
            continuous: false,
        }
    }
}

/// Which batch the optimizer is waiting on.
#[derive(Debug, Clone)]
enum State {
    /// Waiting for the initial vertices' values.
    Init,
    /// Waiting for the `n` parallel reflections.
    Reflect,
    /// Waiting for the single expansion-check point; carries the
    /// reflected points and their values.
    ExpandCheck { reflections: Vec<(Point, f64)> },
    /// Waiting for the `n` parallel expansions; carries the reflections
    /// as the fallback set for the no-check ablation.
    Expand { reflections: Vec<(Point, f64)> },
    /// Waiting for the `n` parallel shrink points.
    Shrink,
    /// Waiting for the stopping-criterion probe points.
    Probe,
    /// Search finished.
    Done,
}

/// The Parallel Rank Ordering optimizer.
///
/// # Example
///
/// The ask/tell loop — the caller owns evaluation:
///
/// ```
/// use harmony_core::{Optimizer, ProOptimizer};
/// use harmony_params::{ParamDef, ParamSpace};
///
/// let space = ParamSpace::new(vec![
///     ParamDef::integer("x", -20, 20, 1).unwrap(),
///     ParamDef::integer("y", -20, 20, 1).unwrap(),
/// ])
/// .unwrap();
/// let mut pro = ProOptimizer::with_defaults(space);
/// loop {
///     let batch = pro.propose();
///     if batch.is_empty() {
///         break; // converged
///     }
///     let values: Vec<f64> = batch.iter().map(|p| p[0] * p[0] + p[1] * p[1]).collect();
///     pro.observe(&values);
/// }
/// assert_eq!(pro.best().unwrap().0.as_slice(), &[0.0, 0.0]);
/// ```
pub struct ProOptimizer {
    space: ParamSpace,
    cfg: ProConfig,
    simplex: Simplex,
    values: Vec<f64>,
    state: State,
    pending: Vec<Point>,
    incumbent: Incumbent,
    history: HistoryInterpolator,
    iterations: usize,
    converged: bool,
    /// Reused per-iteration buffers (sort order, sorted values, raw
    /// transform outputs) so steady-state iterations allocate nothing.
    scratch_order: Vec<usize>,
    scratch_vals: Vec<f64>,
    scratch_raw: Vec<Point>,
    /// Telemetry handle (disabled by default); the driver owns the
    /// logical clock, PRO only emits spans and decision events.
    tel: Telemetry,
    /// Open `pro.iteration` span id (0 when none).
    iter_span: u64,
}

impl ProOptimizer {
    /// Creates PRO over `space` with the given configuration.
    pub fn new(space: ParamSpace, cfg: ProConfig) -> Self {
        let simplex =
            initial_simplex(&space, cfg.shape, cfg.relative_size).expect("valid initial simplex");
        let pending = simplex.vertices().to_vec();
        let history = HistoryInterpolator::new(&space);
        ProOptimizer {
            space,
            cfg,
            simplex,
            values: Vec::new(),
            state: State::Init,
            pending,
            incumbent: Incumbent::new(),
            history,
            iterations: 0,
            converged: false,
            scratch_order: Vec::new(),
            scratch_vals: Vec::new(),
            scratch_raw: Vec::new(),
            tel: Telemetry::disabled(),
            iter_span: 0,
        }
    }

    /// PRO with the paper's defaults (symmetric 2N simplex, `r = 0.2`,
    /// toward-center projection, expansion check on).
    pub fn with_defaults(space: ParamSpace) -> Self {
        ProOptimizer::new(space, ProConfig::default())
    }

    /// Completed simplex-transform iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Attaches a telemetry handle: each iteration becomes a
    /// `pro.iteration` span (fields: iteration index, simplex size,
    /// best value) and every state-machine branch emits a
    /// `pro.decision` event. The handle's logical clock is driven by
    /// the caller (the tuning driver stamps it with the step index).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Closes any open iteration span and opens the next one.
    fn telemetry_iteration_boundary(&mut self) {
        if !self.tel.enabled() {
            return;
        }
        self.close_iter_span();
        self.iter_span = self.tel.span_open(
            "pro.iteration",
            vec![
                Field::new("iter", self.iterations),
                Field::new("k", self.simplex.len()),
                Field::new("best", self.values[0]),
            ],
        );
    }

    fn close_iter_span(&mut self) {
        if self.iter_span != 0 {
            self.tel.span_close(self.iter_span);
            self.iter_span = 0;
        }
    }

    /// Re-anchors the search: rebuilds the initial simplex around
    /// `center` and resets the state machine (the incumbent is kept).
    /// Used by the multi-start wrapper to explore a fresh region.
    ///
    /// # Panics
    /// Panics when `center` is inadmissible.
    pub fn recenter(&mut self, center: &Point) {
        self.simplex = harmony_params::init::initial_simplex_at(
            &self.space,
            self.cfg.shape,
            self.cfg.relative_size,
            center,
        )
        .expect("valid recentered simplex");
        self.values = Vec::new();
        self.pending = self.simplex.vertices().to_vec();
        self.state = State::Init;
        self.converged = false;
        self.close_iter_span();
        event!(
            self.tel,
            "pro.decision",
            action = "recenter",
            iter = self.iterations
        );
    }

    /// The current simplex (for diagnostics and tests).
    pub fn simplex(&self) -> &Simplex {
        &self.simplex
    }

    /// The configuration in use.
    pub fn config(&self) -> &ProConfig {
        &self.cfg
    }

    fn best_vertex(&self) -> &Point {
        self.simplex.vertex(0)
    }

    /// Projects a transformed point back into the admissible region,
    /// rounding toward the transformation center `v⁰`.
    fn project(&self, raw: &Point) -> Point {
        self.space
            .project(raw, self.best_vertex(), self.cfg.rounding)
    }

    /// The stopping-criterion evaluation batch: the 2N neighbour probes,
    /// preceded (in continuous-monitoring mode) by `v⁰` itself so the
    /// running configuration is re-measured with fresh noise instead of
    /// trusting a possibly extreme-value-lucky stored estimate.
    fn probe_batch(&self, probes: Vec<Point>) -> Vec<Point> {
        if self.cfg.continuous {
            let mut batch = Vec::with_capacity(probes.len() + 1);
            batch.push(self.best_vertex().clone());
            batch.extend(probes);
            batch
        } else {
            probes
        }
    }

    /// Applies `kind` to every non-best vertex, projects, and installs
    /// the result as the pending batch — through reused scratch buffers,
    /// so the steady-state iteration path performs no heap allocation.
    fn refill_pending_transformed(&mut self, kind: StepKind) {
        let mut raw = std::mem::take(&mut self.scratch_raw);
        self.simplex.transform_around_into(0, kind, &mut raw);
        self.pending.clear();
        for p in &raw {
            let projected = self.project(p);
            self.pending.push(projected);
        }
        self.scratch_raw = raw;
    }

    /// Sorts the simplex by value and decides the next phase: probe when
    /// collapsed, otherwise a parallel reflection step.
    fn enter_iteration(&mut self) {
        let mut order = std::mem::take(&mut self.scratch_order);
        order.clear();
        order.extend(0..self.values.len());
        // total_cmp: a stray NaN estimate sorts above every finite value
        // instead of panicking mid-session
        order.sort_by(|&a, &b| self.values[a].total_cmp(&self.values[b]));
        self.simplex.permute(&order);
        let mut sorted = std::mem::take(&mut self.scratch_vals);
        sorted.clear();
        sorted.extend(order.iter().map(|&i| self.values[i]));
        std::mem::swap(&mut self.values, &mut sorted);
        self.scratch_vals = sorted;
        self.scratch_order = order;

        self.telemetry_iteration_boundary();
        if self.simplex.collapsed(self.cfg.collapse_tol) {
            let probes = self
                .space
                .probe_points(self.best_vertex(), self.cfg.probe_eps);
            if probes.is_empty() {
                event!(
                    self.tel,
                    "pro.decision",
                    action = "converged",
                    iter = self.iterations
                );
                self.close_iter_span();
                self.converged = true;
                self.state = State::Done;
                self.pending = Vec::new();
            } else {
                self.pending = self.probe_batch(probes);
                event!(
                    self.tel,
                    "pro.decision",
                    action = "probe",
                    iter = self.iterations,
                    points = self.pending.len()
                );
                self.state = State::Probe;
            }
        } else {
            self.refill_pending_transformed(StepKind::Reflect);
            event!(
                self.tel,
                "pro.decision",
                action = "reflect",
                iter = self.iterations,
                points = self.pending.len(),
                best = self.values[0]
            );
            self.state = State::Reflect;
        }
    }

    /// Advances the state machine with a complete value vector for the
    /// pending batch (measured, or measured + interpolated substitutes
    /// from [`Optimizer::observe_partial`]).
    fn advance(&mut self, values: &[f64]) {
        let pending = std::mem::take(&mut self.pending);
        let state = std::mem::replace(&mut self.state, State::Done);
        match state {
            State::Init => {
                self.values = values.to_vec();
                self.enter_iteration();
            }
            State::Reflect => {
                let reflections: Vec<(Point, f64)> =
                    pending.into_iter().zip(values.iter().copied()).collect();
                let l = argmin(values);
                if values[l] < self.values[0] {
                    // successful reflection: check or perform expansion
                    if self.cfg.expansion_check {
                        // expansion of the source vertex whose reflection
                        // won: source of r^j is vertex j+1
                        let source = self.simplex.vertex(l + 1);
                        let raw = source.expand_through(self.best_vertex());
                        let projected = self.project(&raw);
                        self.pending.clear();
                        self.pending.push(projected);
                        event!(
                            self.tel,
                            "pro.decision",
                            action = "expand_check",
                            iter = self.iterations,
                            r_best = values[l]
                        );
                        self.state = State::ExpandCheck { reflections };
                    } else {
                        self.refill_pending_transformed(StepKind::Expand);
                        event!(
                            self.tel,
                            "pro.decision",
                            action = "expand_all",
                            iter = self.iterations,
                            r_best = values[l]
                        );
                        self.state = State::Expand { reflections };
                    }
                } else {
                    // failed reflection: shrink around the best vertex
                    self.refill_pending_transformed(StepKind::Shrink);
                    event!(
                        self.tel,
                        "pro.decision",
                        action = "shrink",
                        iter = self.iterations,
                        best = self.values[0]
                    );
                    self.state = State::Shrink;
                }
            }
            State::ExpandCheck { reflections } => {
                let e_val = values[0];
                let best_reflection = reflections
                    .iter()
                    .map(|(_, v)| *v)
                    .fold(f64::INFINITY, f64::min);
                if e_val < best_reflection {
                    // commit the full parallel expansion step
                    self.refill_pending_transformed(StepKind::Expand);
                    event!(
                        self.tel,
                        "pro.decision",
                        action = "expand_commit",
                        iter = self.iterations,
                        e_val = e_val
                    );
                    self.state = State::Expand { reflections };
                } else {
                    event!(
                        self.tel,
                        "pro.decision",
                        action = "accept_reflections",
                        iter = self.iterations,
                        e_val = e_val
                    );
                    let (pts, vals): (Vec<_>, Vec<_>) = reflections.into_iter().unzip();
                    self.accept(pts, vals);
                }
            }
            State::Expand { reflections } => {
                let expansions: Vec<(Point, f64)> =
                    pending.into_iter().zip(values.iter().copied()).collect();
                if self.cfg.expansion_check {
                    // Algorithm 2 accepts the expansion set unconditionally
                    // once the check point succeeded
                    event!(
                        self.tel,
                        "pro.decision",
                        action = "accept_expansions",
                        iter = self.iterations
                    );
                    let (pts, vals): (Vec<_>, Vec<_>) = expansions.into_iter().unzip();
                    self.accept(pts, vals);
                } else {
                    // ablation: pick the better of the two parallel sets
                    let best_e = expansions
                        .iter()
                        .map(|(_, v)| *v)
                        .fold(f64::INFINITY, f64::min);
                    let best_r = reflections
                        .iter()
                        .map(|(_, v)| *v)
                        .fold(f64::INFINITY, f64::min);
                    let keep_expansions = best_e < best_r;
                    event!(
                        self.tel,
                        "pro.decision",
                        action = if keep_expansions {
                            "keep_expansions"
                        } else {
                            "keep_reflections"
                        },
                        iter = self.iterations
                    );
                    let chosen = if keep_expansions {
                        expansions
                    } else {
                        reflections
                    };
                    let (pts, vals): (Vec<_>, Vec<_>) = chosen.into_iter().unzip();
                    self.accept(pts, vals);
                }
            }
            State::Shrink => {
                let vals = values.to_vec();
                self.accept(pending, vals);
            }
            State::Probe => {
                // in continuous mode the first batch entry is a fresh
                // re-measurement of v0 itself; otherwise compare probes
                // against the stored estimate
                let (baseline, probe_pts, probe_vals) = if self.cfg.continuous {
                    (values[0], &pending[1..], &values[1..])
                } else {
                    (self.values[0], pending.as_slice(), values)
                };
                let l = argmin(probe_vals);
                if probe_vals[l] < baseline {
                    // a neighbour improves: continue with the probe
                    // simplex (v0 kept so the running point stays a
                    // vertex)
                    event!(
                        self.tel,
                        "pro.decision",
                        action = "probe_improved",
                        iter = self.iterations,
                        found = probe_vals[l]
                    );
                    let mut verts = vec![self.best_vertex().clone()];
                    let mut vals = vec![baseline];
                    verts.extend(probe_pts.iter().cloned());
                    vals.extend_from_slice(probe_vals);
                    self.simplex = Simplex::new(verts).expect("probe simplex is valid");
                    self.values = vals;
                    self.iterations += 1;
                    self.enter_iteration();
                } else if self.cfg.continuous {
                    // keep monitoring: adopt the fresh estimate of v0 and
                    // re-probe the neighbourhood next phase
                    event!(
                        self.tel,
                        "pro.decision",
                        action = "monitor",
                        iter = self.iterations,
                        baseline = baseline
                    );
                    for v in self.values.iter_mut() {
                        *v = baseline;
                    }
                    let probes = self
                        .space
                        .probe_points(self.best_vertex(), self.cfg.probe_eps);
                    self.pending = self.probe_batch(probes);
                    self.state = State::Probe;
                } else {
                    // v0 is a local minimum: stop (§3.2.2)
                    event!(
                        self.tel,
                        "pro.decision",
                        action = "converged",
                        iter = self.iterations
                    );
                    self.close_iter_span();
                    self.converged = true;
                    self.state = State::Done;
                }
            }
            State::Done => panic!("observe called after convergence"),
        }
    }

    /// Replaces all non-best vertices (indices `1..m`) with `points` and
    /// their `values`, then starts the next iteration.
    fn accept(&mut self, points: Vec<Point>, values: Vec<f64>) {
        debug_assert_eq!(points.len(), self.simplex.len() - 1);
        for (j, (p, v)) in points.into_iter().zip(values).enumerate() {
            self.simplex.set_vertex(j + 1, p);
            self.values[j + 1] = v;
        }
        self.iterations += 1;
        self.enter_iteration();
    }
}

impl Checkpoint for ProOptimizer {
    fn save_state(&self, w: &mut StateWriter) {
        w.tag("pro");
        w.points(self.simplex.vertices());
        w.f64_slice(&self.values);
        match &self.state {
            State::Init => w.u8(0),
            State::Reflect => w.u8(1),
            State::ExpandCheck { reflections } => {
                w.u8(2);
                write_pairs(w, reflections);
            }
            State::Expand { reflections } => {
                w.u8(3);
                write_pairs(w, reflections);
            }
            State::Shrink => w.u8(4),
            State::Probe => w.u8(5),
            State::Done => w.u8(6),
        }
        w.points(&self.pending);
        self.incumbent.save_state(w);
        self.history.save_state(w);
        w.usize(self.iterations);
        w.bool(self.converged);
    }

    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), CodecError> {
        r.tag("pro")?;
        self.simplex = simplex_from_vertices(r.points()?)?;
        self.values = r.f64_vec()?;
        self.state = match r.u8()? {
            0 => State::Init,
            1 => State::Reflect,
            2 => State::ExpandCheck {
                reflections: read_pairs(r)?,
            },
            3 => State::Expand {
                reflections: read_pairs(r)?,
            },
            4 => State::Shrink,
            5 => State::Probe,
            6 => State::Done,
            b => return Err(CodecError::BadValue(format!("bad pro state {b}"))),
        };
        self.pending = r.points()?;
        self.incumbent.restore_state(r)?;
        self.history.restore_state(r)?;
        self.iterations = r.usize()?;
        self.converged = r.bool()?;
        // span bookkeeping belongs to the previous process's telemetry
        self.iter_span = 0;
        Ok(())
    }
}

impl Optimizer for ProOptimizer {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Vec<Point> {
        if matches!(self.state, State::Done) {
            return Vec::new();
        }
        self.pending.clone()
    }

    fn observe(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.pending.len(),
            "observe: expected {} values, got {}",
            self.pending.len(),
            values.len()
        );
        assert!(
            values.iter().all(|v| v.is_finite()),
            "observe: non-finite objective value"
        );
        for (p, &v) in self.pending.iter().zip(values.iter()) {
            self.incumbent.offer(p, v);
            self.history.record(p, v);
        }
        self.advance(values);
    }

    fn observe_partial(&mut self, values: &[Option<f64>]) {
        assert_eq!(
            values.len(),
            self.pending.len(),
            "observe_partial: expected {} values, got {}",
            self.pending.len(),
            values.len()
        );
        for (p, v) in self.pending.iter().zip(values.iter()) {
            if let Some(v) = *v {
                assert!(v.is_finite(), "observe_partial: non-finite objective value");
                self.incumbent.offer(p, v);
                self.history.record(p, v);
            }
        }
        // measured entries are on record now, so the interpolator has at
        // least one point (the driver's quorum rule guarantees ≥ 1 Some
        // per batch); synthetic fills are NOT recorded back
        let filled = self.history.fill(&self.pending, values);
        self.advance(&filled);
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.incumbent.get()
    }

    fn recommendation(&self) -> Option<(Point, f64)> {
        // deploy the current best simplex vertex — what Active Harmony
        // actually sets the application's parameters to
        if self.values.is_empty() {
            self.incumbent.get()
        } else {
            Some((self.simplex.vertex(0).clone(), self.values[0]))
        }
    }

    fn converged(&self) -> bool {
        self.converged
    }

    fn name(&self) -> &str {
        "pro"
    }

    fn as_checkpoint(&self) -> Option<&dyn Checkpoint> {
        Some(self)
    }

    fn as_checkpoint_mut(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

fn argmin(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty batch")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_params::ParamDef;

    fn lattice_space(lo: i64, hi: i64) -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::integer("x", lo, hi, 1).unwrap(),
            ParamDef::integer("y", lo, hi, 1).unwrap(),
        ])
        .unwrap()
    }

    /// Drives an optimizer against a deterministic objective until
    /// convergence or the budget runs out; returns evaluation count.
    fn drive<F: Fn(&Point) -> f64>(opt: &mut ProOptimizer, f: F, max_batches: usize) -> usize {
        let mut evals = 0;
        for _ in 0..max_batches {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            evals += batch.len();
            let vals: Vec<f64> = batch.iter().map(&f).collect();
            opt.observe(&vals);
        }
        evals
    }

    #[test]
    fn converges_to_global_min_of_bowl() {
        let space = lattice_space(-50, 50);
        let mut opt = ProOptimizer::with_defaults(space);
        drive(&mut opt, |p| p[0] * p[0] + p[1] * p[1] + 3.0, 500);
        assert!(opt.converged(), "did not converge");
        let (best, val) = opt.best().unwrap();
        assert_eq!(best.as_slice(), &[0.0, 0.0]);
        assert_eq!(val, 3.0);
    }

    #[test]
    fn converges_to_shifted_minimum() {
        let space = lattice_space(0, 100);
        let mut opt = ProOptimizer::with_defaults(space);
        drive(&mut opt, |p| (p[0] - 13.0).abs() + (p[1] - 77.0).abs(), 500);
        assert!(opt.converged());
        let (best, _) = opt.best().unwrap();
        assert_eq!(best.as_slice(), &[13.0, 77.0]);
    }

    #[test]
    fn all_proposals_are_admissible() {
        let space = ParamSpace::new(vec![
            ParamDef::integer("x", 0, 30, 3).unwrap(),
            ParamDef::levels("y", vec![1.0, 2.0, 5.0, 9.0]).unwrap(),
        ])
        .unwrap();
        let mut opt = ProOptimizer::with_defaults(space.clone());
        for _ in 0..200 {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            for p in &batch {
                assert!(space.is_admissible(p), "inadmissible proposal {p:?}");
            }
            let vals: Vec<f64> = batch.iter().map(|p| (p[0] - 9.0).powi(2) + p[1]).collect();
            opt.observe(&vals);
        }
    }

    #[test]
    fn expansion_path_taken_on_descending_plane() {
        // on a linear slope reflections always improve and expansions
        // improve further, so the first iterations must expand
        let space = lattice_space(-100, 100);
        let mut opt = ProOptimizer::with_defaults(space);
        // f decreasing in x+y: minimum at (100, 100) corner... use
        // negative slope toward corner
        drive(&mut opt, |p| 1000.0 - p[0] - p[1], 500);
        assert!(opt.converged());
        let (best, _) = opt.best().unwrap();
        assert_eq!(best.as_slice(), &[100.0, 100.0]);
    }

    #[test]
    fn probe_escapes_fake_convergence() {
        // Scripted oracle: force the simplex to collapse onto x = 3 while
        // the probe discovers the better neighbour x = 2, verifying the
        // §3.2.2 "continue PRO with the generated simplex" branch.
        let space = ParamSpace::new(vec![ParamDef::integer("x", 0, 4, 1).unwrap()]).unwrap();
        let cfg = ProConfig {
            relative_size: 0.5, // b = 1 -> initial simplex {3, 1}
            ..ProConfig::default()
        };
        let mut opt = ProOptimizer::new(space, cfg);
        // (expected proposal, scripted values)
        let script: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![3.0, 1.0], vec![1.0, 2.0]), // init: v0 = 3
            (vec![4.0], vec![5.0]),           // reflect 2*3-1=5 -> clamp 4: fails
            (vec![2.0], vec![3.0]),           // shrink midpoint
            (vec![4.0], vec![6.0]),           // reflect 2*3-2=4: fails
            (vec![3.0], vec![1.1]),           // shrink collapses onto 3
            (vec![2.0, 4.0], vec![0.5, 7.0]), // probe: neighbour 2 improves!
            (vec![1.0, 0.0], vec![5.0, 5.0]), // continue: reflections fail
            (vec![2.0, 3.0], vec![0.6, 5.0]), // shrink
            (vec![2.0, 1.0], vec![5.0, 5.0]), // reflections fail again
            (vec![2.0, 2.0], vec![0.6, 0.6]), // shrink collapses onto 2
            (vec![1.0, 3.0], vec![9.0, 9.0]), // probe finds nothing: done
        ];
        for (i, (expect, answers)) in script.iter().enumerate() {
            let batch = opt.propose();
            let got: Vec<f64> = batch.iter().map(|p| p[0]).collect();
            assert_eq!(&got, expect, "step {i}");
            opt.observe(answers);
        }
        assert!(opt.converged());
        assert!(opt.propose().is_empty());
        let (best, val) = opt.best().unwrap();
        assert_eq!(best.as_slice(), &[2.0]);
        assert_eq!(val, 0.5);
    }

    #[test]
    fn converged_stops_proposing() {
        let space = lattice_space(-5, 5);
        let mut opt = ProOptimizer::with_defaults(space);
        drive(&mut opt, |p| p[0] * p[0] + p[1] * p[1], 500);
        assert!(opt.converged());
        assert!(opt.propose().is_empty());
    }

    #[test]
    fn no_expansion_check_still_converges() {
        let space = lattice_space(-30, 30);
        let cfg = ProConfig {
            expansion_check: false,
            ..ProConfig::default()
        };
        let mut opt = ProOptimizer::new(space, cfg);
        drive(
            &mut opt,
            |p| (p[0] - 7.0).powi(2) + (p[1] + 4.0).powi(2),
            500,
        );
        assert!(opt.converged());
        let (best, _) = opt.best().unwrap();
        assert_eq!(best.as_slice(), &[7.0, -4.0]);
    }

    #[test]
    fn minimal_simplex_also_works() {
        let space = lattice_space(-30, 30);
        let cfg = ProConfig {
            shape: InitialShape::Minimal,
            ..ProConfig::default()
        };
        let mut opt = ProOptimizer::new(space, cfg);
        drive(&mut opt, |p| p[0].abs() + p[1].abs(), 500);
        assert!(opt.converged());
        assert_eq!(opt.best().unwrap().0.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn nearest_rounding_ablation_converges() {
        let space = lattice_space(-30, 30);
        let cfg = ProConfig {
            rounding: Rounding::Nearest,
            ..ProConfig::default()
        };
        let mut opt = ProOptimizer::new(space, cfg);
        drive(&mut opt, |p| p[0] * p[0] + p[1] * p[1], 2_000);
        // nearest rounding loses the guaranteed discrete collapse, but on
        // a bowl it still finds the optimum
        assert_eq!(opt.best().unwrap().0.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn deterministic_given_same_observations() {
        let space = lattice_space(-20, 20);
        let f = |p: &Point| (p[0] - 3.0).powi(2) + (p[1] - 2.0).powi(2);
        let run = || {
            let mut opt = ProOptimizer::with_defaults(space.clone());
            let mut log = Vec::new();
            for _ in 0..100 {
                let batch = opt.propose();
                if batch.is_empty() {
                    break;
                }
                log.extend(batch.iter().map(|p| (p[0], p[1])));
                let vals: Vec<f64> = batch.iter().map(f).collect();
                opt.observe(&vals);
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn iteration_counter_advances() {
        let space = lattice_space(-20, 20);
        let mut opt = ProOptimizer::with_defaults(space);
        drive(&mut opt, |p| p[0] * p[0] + p[1] * p[1], 500);
        assert!(opt.iterations() > 1);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn wrong_observation_length_panics() {
        let space = lattice_space(-5, 5);
        let mut opt = ProOptimizer::with_defaults(space);
        let n = opt.propose().len();
        assert!(n > 1);
        opt.observe(&[1.0]);
    }

    #[test]
    fn handles_1d_space() {
        let space = ParamSpace::new(vec![ParamDef::integer("x", -40, 40, 1).unwrap()]).unwrap();
        let mut opt = ProOptimizer::with_defaults(space);
        drive(&mut opt, |p| (p[0] - 11.0).powi(2), 500);
        assert!(opt.converged());
        assert_eq!(opt.best().unwrap().0.as_slice(), &[11.0]);
    }

    #[test]
    fn continuous_mode_never_converges_and_keeps_probing() {
        let space = lattice_space(-10, 10);
        let cfg = ProConfig {
            continuous: true,
            ..ProConfig::default()
        };
        let mut opt = ProOptimizer::new(space, cfg);
        let f = |p: &Point| p[0] * p[0] + p[1] * p[1] + 1.0;
        for _ in 0..400 {
            let batch = opt.propose();
            assert!(!batch.is_empty(), "continuous mode must keep proposing");
            let vals: Vec<f64> = batch.iter().map(f).collect();
            opt.observe(&vals);
        }
        assert!(!opt.converged());
        // the recommendation still lands on the optimum
        let (rec, _) = opt.recommendation().unwrap();
        assert_eq!(rec.as_slice(), &[0.0, 0.0]);
        // and the steady state is the probe batch: v0 plus its neighbours
        let batch = opt.propose();
        assert_eq!(batch[0].as_slice(), &[0.0, 0.0]);
        assert!(batch.len() >= 3);
    }

    #[test]
    fn continuous_mode_refreshes_v0_estimate() {
        // feed a lucky-low value for v0 once; a later fresh re-measurement
        // must replace it (the stored estimate is not sticky)
        let space = ParamSpace::new(vec![ParamDef::integer("x", 0, 4, 1).unwrap()]).unwrap();
        let cfg = ProConfig {
            continuous: true,
            relative_size: 0.5,
            ..ProConfig::default()
        };
        let mut opt = ProOptimizer::new(space, cfg);
        // init {3, 1}: give 3 a lucky low value
        opt.observe(&[0.1, 5.0]); // v0 = 3 @ 0.1
                                  // reflect [4]: bad
        opt.observe(&[9.0]);
        // shrink [2]: bad
        opt.observe(&[9.0]);
        // reflect [4]: bad -> shrink [3] collapses
        opt.observe(&[9.0]);
        opt.observe(&[0.2]);
        // probe batch = [3 (re-measured), 2, 4]
        let batch = opt.propose();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].as_slice(), &[3.0]);
        // fresh v0 measurement is 4.0 (the luck is gone); neighbour 2 now
        // looks better at 3.0 -> the search must move off the plateau
        opt.observe(&[4.0, 3.0, 9.0]);
        let (rec, val) = opt.recommendation().unwrap();
        assert_eq!(rec.as_slice(), &[2.0]);
        assert_eq!(val, 3.0);
    }

    #[test]
    fn observe_partial_complete_batch_matches_observe() {
        let space = lattice_space(-20, 20);
        let f = |p: &Point| (p[0] - 3.0).powi(2) + (p[1] - 2.0).powi(2);
        let run = |partial: bool| {
            let mut opt = ProOptimizer::with_defaults(space.clone());
            let mut log = Vec::new();
            for _ in 0..100 {
                let batch = opt.propose();
                if batch.is_empty() {
                    break;
                }
                log.extend(batch.iter().map(|p| (p[0], p[1])));
                if partial {
                    let vals: Vec<Option<f64>> = batch.iter().map(|p| Some(f(p))).collect();
                    opt.observe_partial(&vals);
                } else {
                    let vals: Vec<f64> = batch.iter().map(f).collect();
                    opt.observe(&vals);
                }
            }
            log
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn observe_partial_fills_holes_and_still_converges() {
        // drop every 5th estimate; the history interpolation substitute
        // must keep the state machine consistent and the search must
        // still land on the optimum of a smooth bowl
        let space = lattice_space(-20, 20);
        let f = |p: &Point| (p[0] - 4.0).powi(2) + (p[1] + 6.0).powi(2);
        let mut opt = ProOptimizer::with_defaults(space);
        let mut k = 0usize;
        for _ in 0..500 {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            let vals: Vec<Option<f64>> = batch
                .iter()
                .map(|p| {
                    k += 1;
                    // keep the very first (Init) batch fully measured so
                    // the history is primed before the first hole
                    if k.is_multiple_of(5) && k > batch.len() {
                        None
                    } else {
                        Some(f(p))
                    }
                })
                .collect();
            opt.observe_partial(&vals);
        }
        let (best, _) = opt.best().unwrap();
        // holes slow PRO down but must not break it; a bowl is easy
        // enough that it still finds the exact optimum
        assert_eq!(best.as_slice(), &[4.0, -6.0]);
    }

    #[test]
    #[should_panic(expected = "observe_partial: expected")]
    fn observe_partial_wrong_length_panics() {
        let space = lattice_space(-5, 5);
        let mut opt = ProOptimizer::with_defaults(space);
        let n = opt.propose().len();
        assert!(n > 1);
        opt.observe_partial(&[Some(1.0)]);
    }

    #[test]
    fn rugged_surface_reaches_good_local_minimum() {
        // multi-minimum surface: PRO is a local method; assert it ends
        // at *a* local minimum (no 4-neighbour improves)
        let space = lattice_space(-20, 20);
        let f = |p: &Point| {
            let (x, y) = (p[0], p[1]);
            x * x + y * y + 30.0 * ((0.9 * x).sin().powi(2) + (0.7 * y).sin().powi(2))
        };
        let mut opt = ProOptimizer::with_defaults(space.clone());
        drive(&mut opt, f, 2_000);
        assert!(opt.converged());
        let (best, val) = opt.best().unwrap();
        for probe in space.probe_points(&best, 0.01) {
            assert!(
                f(&probe) >= val,
                "probe {probe:?} ({}) beats best {best:?} ({val})",
                f(&probe)
            );
        }
    }
}

//! Baseline optimizers: random search, simulated annealing, and a
//! genetic algorithm.
//!
//! §2 of the paper argues that randomized global methods (SA, GA) are
//! unsuitable for *on-line* tuning: they may converge to better final
//! points, but their transient exploration is expensive and
//! `Total_Time` integrates every bad configuration they visit. These
//! implementations exist to quantify that claim (experiment T3).

use crate::optimizer::{Incumbent, Optimizer};
use harmony_params::{ParamSpace, Point};
use harmony_variability::seeded_rng;
use rand::rngs::SmallRng;
use rand::Rng;

fn random_point(space: &ParamSpace, rng: &mut SmallRng) -> Point {
    let unit: Vec<f64> = (0..space.dims()).map(|_| rng.random::<f64>()).collect();
    space.point_from_unit(&unit)
}

/// One-axis neighbour move: discrete coordinates step to an adjacent
/// admissible level, continuous ones take a 5%-of-width Gaussian-ish
/// step (uniform, clamped).
fn neighbor(space: &ParamSpace, from: &Point, rng: &mut SmallRng) -> Point {
    let axis = rng.random_range(0..space.dims());
    let p = space.param(axis);
    let mut coords = from.as_slice().to_vec();
    if p.is_continuous() {
        let step = 0.05 * p.width() * (2.0 * rng.random::<f64>() - 1.0);
        coords[axis] = p.clamp(coords[axis] + step);
    } else {
        let (below, above) = p.neighbors(coords[axis], 0.01);
        let choice = if rng.random::<bool>() {
            above.or(below)
        } else {
            below.or(above)
        };
        if let Some(c) = choice {
            coords[axis] = c;
        }
    }
    Point::new(coords)
}

/// Uniform random search: every batch draws `batch_size` fresh points.
/// With `batch_size = P` this models a cluster that tries `P` random
/// configurations per time step.
pub struct RandomSearch {
    space: ParamSpace,
    rng: SmallRng,
    batch_size: usize,
    pending: Vec<Point>,
    incumbent: Incumbent,
}

impl RandomSearch {
    /// Creates a random search with the given per-step batch size.
    pub fn new(space: ParamSpace, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size >= 1, "batch size must be positive");
        RandomSearch {
            space,
            rng: seeded_rng(seed),
            batch_size,
            pending: Vec::new(),
            incumbent: Incumbent::new(),
        }
    }
}

impl Optimizer for RandomSearch {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Vec<Point> {
        if self.pending.is_empty() {
            self.pending = (0..self.batch_size)
                .map(|_| random_point(&self.space, &mut self.rng))
                .collect();
        }
        self.pending.clone()
    }

    fn observe(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.pending.len(),
            "observation length mismatch"
        );
        for (p, &v) in self.pending.iter().zip(values) {
            self.incumbent.offer(p, v);
        }
        self.pending.clear();
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.incumbent.get()
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Simulated annealing with single-axis neighbour moves, Metropolis
/// acceptance, and geometric cooling.
pub struct SimulatedAnnealing {
    space: ParamSpace,
    rng: SmallRng,
    current: Point,
    current_val: Option<f64>,
    pending: Vec<Point>,
    temperature: f64,
    cooling: f64,
    incumbent: Incumbent,
    steps: usize,
}

impl SimulatedAnnealing {
    /// Creates SA starting from the space center.
    ///
    /// `t0` is the initial temperature (in objective units); `cooling`
    /// the per-step geometric factor in `(0, 1)`.
    pub fn new(space: ParamSpace, t0: f64, cooling: f64, seed: u64) -> Self {
        assert!(t0 > 0.0, "initial temperature must be positive");
        assert!((0.0..1.0).contains(&cooling), "cooling must be in (0,1)");
        let current = space.center();
        SimulatedAnnealing {
            space,
            rng: seeded_rng(seed),
            pending: vec![current.clone()],
            current,
            current_val: None,
            temperature: t0,
            cooling,
            incumbent: Incumbent::new(),
            steps: 0,
        }
    }

    /// The current temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Accepted + rejected moves so far.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl Optimizer for SimulatedAnnealing {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Vec<Point> {
        if self.pending.is_empty() {
            self.pending = vec![neighbor(&self.space, &self.current, &mut self.rng)];
        }
        self.pending.clone()
    }

    fn observe(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.pending.len(),
            "observation length mismatch"
        );
        let v = values[0];
        assert!(v.is_finite(), "observe: non-finite objective value");
        let candidate = self.pending.remove(0);
        self.incumbent.offer(&candidate, v);
        match self.current_val {
            None => {
                // first observation seeds the chain
                self.current = candidate;
                self.current_val = Some(v);
            }
            Some(cur) => {
                let accept = v <= cur || {
                    let p = ((cur - v) / self.temperature).exp();
                    self.rng.random::<f64>() < p
                };
                if accept {
                    self.current = candidate;
                    self.current_val = Some(v);
                }
                self.temperature *= self.cooling;
                self.steps += 1;
            }
        }
        self.pending.clear();
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.incumbent.get()
    }

    fn recommendation(&self) -> Option<(Point, f64)> {
        // deploy the chain's current state
        self.current_val.map(|v| (self.current.clone(), v))
    }

    fn name(&self) -> &str {
        "simulated-annealing"
    }
}

/// A generational genetic algorithm: tournament selection, uniform
/// crossover, neighbour-move mutation, one-elite survival.
pub struct GeneticAlgorithm {
    space: ParamSpace,
    rng: SmallRng,
    population: Vec<Point>,
    fitness: Vec<f64>,
    mutation_prob: f64,
    incumbent: Incumbent,
    generations: usize,
}

impl GeneticAlgorithm {
    /// Creates a GA with `pop_size` random individuals.
    pub fn new(space: ParamSpace, pop_size: usize, mutation_prob: f64, seed: u64) -> Self {
        assert!(pop_size >= 2, "population needs at least 2 individuals");
        assert!(
            (0.0..=1.0).contains(&mutation_prob),
            "mutation probability must be in [0,1]"
        );
        let mut rng = seeded_rng(seed);
        let population = (0..pop_size)
            .map(|_| random_point(&space, &mut rng))
            .collect();
        GeneticAlgorithm {
            space,
            rng,
            population,
            fitness: Vec::new(),
            mutation_prob,
            incumbent: Incumbent::new(),
            generations: 0,
        }
    }

    /// Completed generations.
    pub fn generations(&self) -> usize {
        self.generations
    }

    fn tournament(&mut self) -> usize {
        let a = self.rng.random_range(0..self.population.len());
        let b = self.rng.random_range(0..self.population.len());
        if self.fitness[a] <= self.fitness[b] {
            a
        } else {
            b
        }
    }
}

impl Optimizer for GeneticAlgorithm {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Vec<Point> {
        self.population.clone()
    }

    fn observe(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.population.len(),
            "observation length mismatch"
        );
        self.fitness = values.to_vec();
        for (p, &v) in self.population.iter().zip(values) {
            self.incumbent.offer(p, v);
        }
        // next generation
        let elite_idx = self
            .fitness
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty population")
            .0;
        let mut next = vec![self.population[elite_idx].clone()];
        while next.len() < self.population.len() {
            let (pa, pb) = (self.tournament(), self.tournament());
            let mut coords = Vec::with_capacity(self.space.dims());
            for d in 0..self.space.dims() {
                let gene = if self.rng.random::<bool>() {
                    self.population[pa][d]
                } else {
                    self.population[pb][d]
                };
                coords.push(gene);
            }
            let mut child = Point::new(coords);
            if self.rng.random::<f64>() < self.mutation_prob {
                child = neighbor(&self.space, &child, &mut self.rng);
            }
            next.push(child);
        }
        self.population = next;
        self.generations += 1;
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.incumbent.get()
    }

    fn recommendation(&self) -> Option<(Point, f64)> {
        // deploy the elite (population slot 0 after a generation)
        if self.fitness.is_empty() {
            self.incumbent.get()
        } else {
            let elite = self
                .fitness
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty population");
            Some((self.population[0].clone(), *elite.1))
        }
    }

    fn name(&self) -> &str {
        "genetic"
    }
}

/// Exhaustive lattice sweep in processor-sized batches — the ATLAS-style
/// *off-line* approach the paper contrasts with on-line tuning (§7):
/// guaranteed to find the global optimum of a discrete space, at a
/// `Total_Time` cost proportional to the whole lattice.
pub struct ExhaustiveSweep {
    space: ParamSpace,
    queue: Vec<Point>,
    cursor: usize,
    batch_size: usize,
    pending_len: usize,
    incumbent: Incumbent,
}

impl ExhaustiveSweep {
    /// Creates a sweep over a fully discrete space.
    ///
    /// # Panics
    /// Panics when the space is continuous (no finite lattice) or the
    /// batch size is zero.
    pub fn new(space: ParamSpace, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be positive");
        assert!(
            space.lattice_size().is_some(),
            "exhaustive sweep needs a finite lattice"
        );
        let queue: Vec<Point> = space.lattice().collect();
        ExhaustiveSweep {
            space,
            queue,
            cursor: 0,
            batch_size,
            pending_len: 0,
            incumbent: Incumbent::new(),
        }
    }

    /// Lattice points remaining to evaluate.
    pub fn remaining(&self) -> usize {
        self.queue.len() - self.cursor
    }
}

impl Optimizer for ExhaustiveSweep {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Vec<Point> {
        let end = (self.cursor + self.batch_size).min(self.queue.len());
        self.pending_len = end - self.cursor;
        self.queue[self.cursor..end].to_vec()
    }

    fn observe(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.pending_len,
            "observation length mismatch"
        );
        for (p, &v) in self.queue[self.cursor..self.cursor + self.pending_len]
            .iter()
            .zip(values)
        {
            self.incumbent.offer(p, v);
        }
        self.cursor += self.pending_len;
        self.pending_len = 0;
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.incumbent.get()
    }

    fn converged(&self) -> bool {
        self.cursor >= self.queue.len()
    }

    fn name(&self) -> &str {
        "exhaustive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_params::ParamDef;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::integer("x", -20, 20, 1).unwrap(),
            ParamDef::integer("y", -20, 20, 1).unwrap(),
        ])
        .unwrap()
    }

    fn bowl(p: &Point) -> f64 {
        p[0] * p[0] + p[1] * p[1] + 1.0
    }

    fn drive<O: Optimizer>(opt: &mut O, batches: usize) {
        for _ in 0..batches {
            let b = opt.propose();
            if b.is_empty() {
                break;
            }
            let vals: Vec<f64> = b.iter().map(bowl).collect();
            opt.observe(&vals);
        }
    }

    #[test]
    fn random_search_improves_with_budget() {
        let mut opt = RandomSearch::new(space(), 8, 1);
        drive(&mut opt, 50);
        let (_, val) = opt.best().unwrap();
        assert!(val < 50.0, "val={val}");
        // proposals are admissible
        for p in opt.propose() {
            assert!(opt.space().is_admissible(&p));
        }
    }

    #[test]
    fn random_search_batches_have_requested_size() {
        let mut opt = RandomSearch::new(space(), 5, 2);
        assert_eq!(opt.propose().len(), 5);
        opt.observe(&[1.0; 5]);
        assert_eq!(opt.propose().len(), 5);
    }

    #[test]
    fn sa_descends_bowl() {
        let mut opt = SimulatedAnnealing::new(space(), 50.0, 0.95, 3);
        drive(&mut opt, 2_000);
        let (_, val) = opt.best().unwrap();
        assert!(val <= 5.0, "val={val}");
        assert!(opt.temperature() < 50.0);
        assert!(opt.steps() > 100);
    }

    #[test]
    fn sa_accepts_uphill_when_hot() {
        // with huge temperature nearly every move is accepted, so the
        // chain wanders; with T ~ 0 it locks in
        let mut hot = SimulatedAnnealing::new(space(), 1e9, 0.9999, 4);
        drive(&mut hot, 500);
        let mut cold = SimulatedAnnealing::new(space(), 1e-9, 0.5, 4);
        drive(&mut cold, 500);
        let (_, hv) = hot.best().unwrap();
        let (_, cv) = cold.best().unwrap();
        assert!(hv.is_finite() && cv.is_finite());
    }

    #[test]
    fn ga_evolves_toward_minimum() {
        let mut opt = GeneticAlgorithm::new(space(), 16, 0.5, 5);
        drive(&mut opt, 60);
        let (_, val) = opt.best().unwrap();
        assert!(val <= 5.0, "val={val}");
        assert_eq!(opt.generations(), 60);
    }

    #[test]
    fn ga_survives_nan_fitness() {
        // a NaN estimate (corrupted measurement) must not panic the
        // elite argmin, and the elite must stay a finite-fitness member
        let mut opt = GeneticAlgorithm::new(space(), 8, 0.5, 5);
        let batch = opt.propose();
        let vals: Vec<f64> = batch
            .iter()
            .enumerate()
            .map(|(i, p)| if i == 2 { f64::NAN } else { bowl(p) })
            .collect();
        opt.observe(&vals);
        let (_, elite_val) = opt.recommendation().unwrap();
        assert!(elite_val.is_finite(), "elite fitness is {elite_val}");
        drive(&mut opt, 5); // keeps evolving normally afterwards
        assert!(opt.best().unwrap().1.is_finite());
    }

    #[test]
    fn ga_population_stays_admissible() {
        let mut opt = GeneticAlgorithm::new(space(), 10, 0.8, 6);
        for _ in 0..20 {
            let pop = opt.propose();
            for p in &pop {
                assert!(opt.space().is_admissible(p), "{p:?}");
            }
            let vals: Vec<f64> = pop.iter().map(bowl).collect();
            opt.observe(&vals);
        }
    }

    #[test]
    fn ga_elitism_is_monotone() {
        let mut opt = GeneticAlgorithm::new(space(), 12, 0.3, 7);
        let mut best_so_far = f64::INFINITY;
        for _ in 0..30 {
            let pop = opt.propose();
            let vals: Vec<f64> = pop.iter().map(bowl).collect();
            let gen_best = vals.iter().copied().fold(f64::INFINITY, f64::min);
            best_so_far = best_so_far.min(gen_best);
            opt.observe(&vals);
            // elite of the next generation is the best seen this one
            let next = opt.propose();
            assert!((bowl(&next[0]) - best_so_far).abs() < 1e-12);
        }
    }

    #[test]
    fn neighbor_moves_one_axis() {
        let sp = space();
        let mut rng = seeded_rng(8);
        let from = sp.center();
        for _ in 0..100 {
            let to = neighbor(&sp, &from, &mut rng);
            assert!(sp.is_admissible(&to));
            let moved: usize = (0..2).filter(|&d| to[d] != from[d]).count();
            assert!(moved <= 1);
        }
    }

    #[test]
    fn exhaustive_sweep_finds_global_optimum() {
        let sp = space(); // 41 x 41 lattice
        let mut opt = ExhaustiveSweep::new(sp.clone(), 64);
        let mut batches = 0;
        while !opt.converged() {
            let b = opt.propose();
            assert!(!b.is_empty());
            assert!(b.len() <= 64);
            let vals: Vec<f64> = b.iter().map(bowl).collect();
            opt.observe(&vals);
            batches += 1;
        }
        assert_eq!(batches, (41 * 41 + 63) / 64);
        assert_eq!(opt.remaining(), 0);
        let (p, v) = opt.best().unwrap();
        assert_eq!(p.as_slice(), &[0.0, 0.0]);
        assert_eq!(v, 1.0);
        assert!(opt.propose().is_empty());
    }

    #[test]
    #[should_panic(expected = "finite lattice")]
    fn exhaustive_rejects_continuous_spaces() {
        let sp = ParamSpace::new(vec![ParamDef::continuous("x", 0.0, 1.0).unwrap()]).unwrap();
        ExhaustiveSweep::new(sp, 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut opt = RandomSearch::new(space(), 4, seed);
            let mut log = Vec::new();
            for _ in 0..10 {
                let b = opt.propose();
                log.extend(b.iter().map(|p| (p[0], p[1])));
                opt.observe(&b.iter().map(bowl).collect::<Vec<_>>());
            }
            log
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}

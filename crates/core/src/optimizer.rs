//! The batch ask/tell optimizer interface.

use harmony_params::{ParamSpace, Point};

/// A direct-search optimizer driven in batches.
///
/// The driver repeatedly calls [`Optimizer::propose`] for the next batch
/// of points to evaluate *concurrently*, measures them (applying its
/// estimator and scheduling policy), and reports the estimates through
/// [`Optimizer::observe`] in the same order. An empty proposal means the
/// algorithm has nothing more to ask (converged or exhausted).
///
/// Implementations never evaluate the objective themselves — this is
/// what lets one driver vary noise models, sample counts, and processor
/// schedules across all algorithms uniformly.
pub trait Optimizer {
    /// The admissible region being searched.
    fn space(&self) -> &ParamSpace;

    /// The next batch of admissible points to evaluate concurrently.
    /// Returns an empty batch iff the algorithm is finished.
    fn propose(&mut self) -> Vec<Point>;

    /// Reports the estimated objective values for the last proposal, in
    /// proposal order.
    ///
    /// # Panics
    /// Implementations panic if `values.len()` differs from the last
    /// proposal's length or if called before `propose`.
    fn observe(&mut self, values: &[f64]);

    /// The best point and estimate seen so far (by raw estimate — under
    /// noise this is an extreme-value-biased record, useful for
    /// reporting but not what a tuning system should deploy).
    fn best(&self) -> Option<(Point, f64)>;

    /// The configuration the algorithm would *deploy now* — for simplex
    /// methods the current best vertex `v⁰`, which under noisy
    /// estimation can differ from the luckiest-ever observation.
    /// Defaults to [`Optimizer::best`].
    fn recommendation(&self) -> Option<(Point, f64)> {
        self.best()
    }

    /// True once the algorithm's own stopping criterion has fired.
    fn converged(&self) -> bool {
        false
    }

    /// Algorithm name for reports.
    fn name(&self) -> &str;
}

/// Book-keeping shared by all optimizers: remembers the best estimate
/// ever observed (the incumbent the cluster keeps running after
/// convergence).
#[derive(Debug, Clone, Default)]
pub struct Incumbent {
    best: Option<(Point, f64)>,
}

impl Incumbent {
    /// Empty incumbent.
    pub fn new() -> Self {
        Incumbent::default()
    }

    /// Offers a candidate; keeps it when strictly better.
    pub fn offer(&mut self, point: &Point, value: f64) {
        if self.best.as_ref().is_none_or(|(_, b)| value < *b) {
            self.best = Some((point.clone(), value));
        }
    }

    /// Current best, if any.
    pub fn get(&self) -> Option<(Point, f64)> {
        self.best.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incumbent_keeps_minimum() {
        let mut inc = Incumbent::new();
        assert!(inc.get().is_none());
        let a = Point::from(&[1.0][..]);
        let b = Point::from(&[2.0][..]);
        inc.offer(&a, 5.0);
        inc.offer(&b, 7.0);
        assert_eq!(inc.get().unwrap().1, 5.0);
        inc.offer(&b, 3.0);
        let (p, v) = inc.get().unwrap();
        assert_eq!(v, 3.0);
        assert_eq!(p, b);
    }

    #[test]
    fn ties_keep_first() {
        let mut inc = Incumbent::new();
        let a = Point::from(&[1.0][..]);
        let b = Point::from(&[2.0][..]);
        inc.offer(&a, 5.0);
        inc.offer(&b, 5.0);
        assert_eq!(inc.get().unwrap().0, a);
    }
}

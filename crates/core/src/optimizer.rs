//! The batch ask/tell optimizer interface.

use harmony_params::{ParamSpace, Point};
use harmony_recovery::{Checkpoint, CodecError, StateReader, StateWriter};
use harmony_surface::PerfDatabase;

/// A direct-search optimizer driven in batches.
///
/// The driver repeatedly calls [`Optimizer::propose`] for the next batch
/// of points to evaluate *concurrently*, measures them (applying its
/// estimator and scheduling policy), and reports the estimates through
/// [`Optimizer::observe`] in the same order. An empty proposal means the
/// algorithm has nothing more to ask (converged or exhausted).
///
/// Implementations never evaluate the objective themselves — this is
/// what lets one driver vary noise models, sample counts, and processor
/// schedules across all algorithms uniformly.
pub trait Optimizer {
    /// The admissible region being searched.
    fn space(&self) -> &ParamSpace;

    /// The next batch of admissible points to evaluate concurrently.
    /// Returns an empty batch iff the algorithm is finished.
    fn propose(&mut self) -> Vec<Point>;

    /// Reports the estimated objective values for the last proposal, in
    /// proposal order.
    ///
    /// # Panics
    /// Implementations panic if `values.len()` differs from the last
    /// proposal's length or if called before `propose`.
    fn observe(&mut self, values: &[f64]);

    /// Reports a *partial* batch: `values[i]` is `None` when slot `i`'s
    /// estimate was lost to faults (crashed client, dropped reports).
    /// The driver calls this only after its quorum rule is satisfied, so
    /// at least one entry is `Some`.
    ///
    /// The default forwards complete batches to [`Optimizer::observe`]
    /// and panics on any hole — algorithms must opt in to partial
    /// observation (PRO/SRO/Nelder–Mead substitute missing vertices with
    /// a performance-database interpolation, §6's own mechanism for
    /// unmeasured points).
    ///
    /// # Panics
    /// The default implementation panics when any entry is `None`.
    fn observe_partial(&mut self, values: &[Option<f64>]) {
        let complete: Option<Vec<f64>> = values.iter().copied().collect();
        match complete {
            Some(v) => self.observe(&v),
            None => panic!(
                "{} does not support partial batches ({} of {} estimates missing)",
                self.name(),
                values.iter().filter(|v| v.is_none()).count(),
                values.len()
            ),
        }
    }

    /// The best point and estimate seen so far (by raw estimate — under
    /// noise this is an extreme-value-biased record, useful for
    /// reporting but not what a tuning system should deploy).
    fn best(&self) -> Option<(Point, f64)>;

    /// The configuration the algorithm would *deploy now* — for simplex
    /// methods the current best vertex `v⁰`, which under noisy
    /// estimation can differ from the luckiest-ever observation.
    /// Defaults to [`Optimizer::best`].
    fn recommendation(&self) -> Option<(Point, f64)> {
        self.best()
    }

    /// True once the algorithm's own stopping criterion has fired.
    fn converged(&self) -> bool {
        false
    }

    /// Algorithm name for reports.
    fn name(&self) -> &str;

    /// The optimizer's checkpointable state, when it supports
    /// snapshot/restore persistence. The default (`None`) marks the
    /// algorithm as non-checkpointable; recovery-enabled sessions then
    /// fall back to pure write-ahead-log replay.
    fn as_checkpoint(&self) -> Option<&dyn Checkpoint> {
        None
    }

    /// Mutable access to the optimizer's checkpointable state; must
    /// return `Some` exactly when [`Optimizer::as_checkpoint`] does.
    fn as_checkpoint_mut(&mut self) -> Option<&mut dyn Checkpoint> {
        None
    }
}

/// Neighbours blended by [`HistoryInterpolator`] when estimating a
/// missing measurement.
const HISTORY_NEIGHBORS: usize = 4;

/// Measured-history fallback for partial batches.
///
/// Optimizers that support [`Optimizer::observe_partial`] record every
/// *measured* `(point, estimate)` pair here; when faults leave holes in
/// a batch, the missing values are substituted with the performance
/// database's inverse-distance-weighted interpolation over the measured
/// history — §6's own mechanism for points the database does not
/// contain. Synthetic substitutes are never recorded back, so the
/// history stays purely measured.
#[derive(Debug)]
pub struct HistoryInterpolator {
    db: PerfDatabase,
}

impl HistoryInterpolator {
    /// An empty history over `space`.
    pub fn new(space: &ParamSpace) -> Self {
        HistoryInterpolator {
            db: PerfDatabase::new(space.clone(), HISTORY_NEIGHBORS),
        }
    }

    /// Records one measured estimate (later measurements of the same
    /// point replace earlier ones).
    pub fn record(&mut self, point: &Point, value: f64) {
        self.db.insert_replacing(point.clone(), value);
    }

    /// Interpolated estimate for `point`, or `None` while the history
    /// is empty.
    pub fn estimate(&self, point: &Point) -> Option<f64> {
        self.db.try_interpolate(point)
    }

    /// Number of distinct measured points recorded.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// True while nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Substitutes every hole in `values` with the interpolated estimate
    /// of the corresponding point in `points`. When the history database
    /// is still empty (the very first batch arriving with holes under
    /// faults, before the caller has recorded anything), holes fall back
    /// to the mean of the batch's own measured entries instead of
    /// panicking — the least-informative finite substitute.
    ///
    /// # Panics
    /// Panics when the lengths differ, or when a hole needs filling
    /// while *both* the history and the batch are empty of measurements
    /// (drivers guarantee a quorum of at least one `Some` per batch).
    pub fn fill(&self, points: &[Point], values: &[Option<f64>]) -> Vec<f64> {
        assert_eq!(points.len(), values.len(), "points/values length mismatch");
        let measured: Vec<f64> = values.iter().flatten().copied().collect();
        let batch_mean = || {
            assert!(
                !measured.is_empty(),
                "cannot fill a hole: empty history and no measured value in the batch"
            );
            measured.iter().sum::<f64>() / measured.len() as f64
        };
        points
            .iter()
            .zip(values.iter())
            .map(|(p, v)| v.unwrap_or_else(|| self.estimate(p).unwrap_or_else(batch_mean)))
            .collect()
    }
}

impl Checkpoint for HistoryInterpolator {
    fn save_state(&self, w: &mut StateWriter) {
        self.db.save_state(w);
    }

    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), CodecError> {
        self.db.restore_state(r)
    }
}

/// Book-keeping shared by all optimizers: remembers the best estimate
/// ever observed (the incumbent the cluster keeps running after
/// convergence).
#[derive(Debug, Clone, Default)]
pub struct Incumbent {
    best: Option<(Point, f64)>,
}

impl Incumbent {
    /// Empty incumbent.
    pub fn new() -> Self {
        Incumbent::default()
    }

    /// Offers a candidate; keeps it when strictly better.
    pub fn offer(&mut self, point: &Point, value: f64) {
        if self.best.as_ref().is_none_or(|(_, b)| value < *b) {
            self.best = Some((point.clone(), value));
        }
    }

    /// Current best, if any.
    pub fn get(&self) -> Option<(Point, f64)> {
        self.best.clone()
    }
}

impl Checkpoint for Incumbent {
    fn save_state(&self, w: &mut StateWriter) {
        w.tag("incumbent");
        match &self.best {
            Some((p, v)) => {
                w.bool(true);
                w.point(p);
                w.f64(*v);
            }
            None => w.bool(false),
        }
    }

    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), CodecError> {
        r.tag("incumbent")?;
        self.best = if r.bool()? {
            Some((r.point()?, r.f64()?))
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incumbent_keeps_minimum() {
        let mut inc = Incumbent::new();
        assert!(inc.get().is_none());
        let a = Point::from(&[1.0][..]);
        let b = Point::from(&[2.0][..]);
        inc.offer(&a, 5.0);
        inc.offer(&b, 7.0);
        assert_eq!(inc.get().unwrap().1, 5.0);
        inc.offer(&b, 3.0);
        let (p, v) = inc.get().unwrap();
        assert_eq!(v, 3.0);
        assert_eq!(p, b);
    }

    #[test]
    fn ties_keep_first() {
        let mut inc = Incumbent::new();
        let a = Point::from(&[1.0][..]);
        let b = Point::from(&[2.0][..]);
        inc.offer(&a, 5.0);
        inc.offer(&b, 5.0);
        assert_eq!(inc.get().unwrap().0, a);
    }

    use harmony_params::ParamDef;

    fn space_1d() -> ParamSpace {
        ParamSpace::new(vec![ParamDef::integer("x", 0, 10, 1).unwrap()]).unwrap()
    }

    /// Minimal optimizer relying on the trait's default
    /// `observe_partial`.
    struct Stub {
        space: ParamSpace,
        got: Vec<f64>,
    }

    impl Optimizer for Stub {
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn propose(&mut self) -> Vec<Point> {
            vec![Point::from(&[1.0][..]), Point::from(&[2.0][..])]
        }
        fn observe(&mut self, values: &[f64]) {
            self.got.extend_from_slice(values);
        }
        fn best(&self) -> Option<(Point, f64)> {
            None
        }
        fn name(&self) -> &str {
            "stub"
        }
    }

    #[test]
    fn default_observe_partial_forwards_complete_batches() {
        let mut stub = Stub {
            space: space_1d(),
            got: Vec::new(),
        };
        stub.observe_partial(&[Some(3.0), Some(4.0)]);
        assert_eq!(stub.got, vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "stub does not support partial batches")]
    fn default_observe_partial_rejects_holes() {
        let mut stub = Stub {
            space: space_1d(),
            got: Vec::new(),
        };
        stub.observe_partial(&[Some(3.0), None]);
    }

    #[test]
    fn history_interpolator_fills_holes() {
        let space = space_1d();
        let mut hist = HistoryInterpolator::new(&space);
        assert!(hist.is_empty());
        let p2 = Point::from(&[2.0][..]);
        let p4 = Point::from(&[4.0][..]);
        let p3 = Point::from(&[3.0][..]);
        assert_eq!(hist.estimate(&p3), None);
        hist.record(&p2, 10.0);
        hist.record(&p4, 20.0);
        assert_eq!(hist.len(), 2);
        // exact hits come back verbatim; holes get a convex combination
        let filled = hist.fill(
            &[p2.clone(), p3.clone(), p4.clone()],
            &[Some(11.0), None, Some(19.0)],
        );
        assert_eq!(filled[0], 11.0);
        assert_eq!(filled[2], 19.0);
        assert!(filled[1] > 10.0 && filled[1] < 20.0, "got {}", filled[1]);
    }

    #[test]
    fn empty_history_falls_back_to_batch_mean() {
        // first batch with holes under faults: nothing recorded yet, so
        // holes take the mean of the batch's own measured entries
        let space = space_1d();
        let hist = HistoryInterpolator::new(&space);
        let filled = hist.fill(
            &[
                Point::from(&[1.0][..]),
                Point::from(&[2.0][..]),
                Point::from(&[3.0][..]),
            ],
            &[Some(4.0), None, Some(8.0)],
        );
        assert_eq!(filled, vec![4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "empty history and no measured value")]
    fn history_interpolator_cannot_fill_from_nothing() {
        let space = space_1d();
        let hist = HistoryInterpolator::new(&space);
        let _ = hist.fill(&[Point::from(&[1.0][..])], &[None]);
    }
}

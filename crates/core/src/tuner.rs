//! The on-line tuning driver: optimizer × objective × noise × cluster.
//!
//! [`OnlineTuner::run`] executes one complete tuning session the way the
//! paper's §6 simulations do: the application must run for (at least)
//! `K = max_steps` barrier-synchronised time steps; every time step runs
//! candidate configurations on the simulated cluster and contributes its
//! worst-case time `T_k` to `Total_Time(K)` (eq. 2). Once the optimizer
//! converges (or stops proposing), the remaining budget *exploits* the
//! incumbent — the tuned application simply keeps running with the best
//! parameters found.
//!
//! Multi-sample estimation (§5.2) is applied here: each proposed point
//! is measured `K` times according to the configured
//! [`Estimator`]/[`SamplingMode`] and only the reduced estimate reaches
//! the optimizer.

use crate::cache::CachedObjective;
use crate::optimizer::Optimizer;
use crate::sampling::Estimator;
use crate::server::ServerError;
use harmony_cluster::{Cluster, SamplingMode, TuningTrace};
use harmony_params::Point;
use harmony_surface::Objective;
use harmony_telemetry::{event, Field, Telemetry};
use harmony_variability::noise::NoiseModel;
use harmony_variability::seeded_rng;

/// Configuration of a tuning session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerConfig {
    /// Number of processors `P` in the simulated cluster.
    pub procs: usize,
    /// Time-step budget `K` of eq. 2 — the session reports
    /// `Total_Time(K)` over exactly this many steps.
    pub max_steps: usize,
    /// How raw observations reduce to the estimate fed to the optimizer.
    pub estimator: Estimator,
    /// How multi-sample evaluations are scheduled (§6.2 uses
    /// [`SamplingMode::SequentialSteps`] as the worst case).
    pub mode: SamplingMode,
    /// RNG seed; sessions are fully deterministic given the seed.
    pub seed: u64,
    /// When true, every time step occupies *all* `P` processors (idle
    /// processors rerun scheduled candidates — or the incumbent during
    /// the exploit phase — and only contribute to the barrier max of
    /// eq. 1). This is the physically faithful SPMD model; turning it
    /// off charges each step only its scheduled evaluations.
    pub full_occupancy: bool,
    /// Number of parallel instances of the tuned configuration that
    /// keep running after the optimizer stops (each exploit step costs
    /// the max of this many noise draws, eq. 1). The paper-sim value is
    /// `2N` — the converged simplex's identical vertices stay the points
    /// evaluated every step; using one value for *all* algorithms keeps
    /// cross-algorithm comparisons fair. Ignored (the full `P` is used)
    /// under `full_occupancy`.
    pub exploit_width: usize,
}

impl TunerConfig {
    /// The paper's §6 setup: 64 processors, sequential multi-sampling,
    /// full SPMD occupancy.
    pub fn paper_default(max_steps: usize, estimator: Estimator, seed: u64) -> Self {
        TunerConfig {
            procs: 64,
            max_steps,
            estimator,
            mode: SamplingMode::SequentialSteps,
            seed,
            full_occupancy: true,
            exploit_width: 6,
        }
    }
}

/// Fault-handling counters of one tuning session. All zero on the
/// fault-free paths ([`OnlineTuner`] and a server session with a
/// fault-free plan); populated by
/// [`crate::server::run_resilient`] when faults fire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reports that missed their deadline (client hang, dropped report,
    /// or client death while running the assignment).
    pub missed_reports: usize,
    /// Assignments re-dispatched to a live client after a miss.
    pub retries: usize,
    /// Slots abandoned after exhausting their retry budget.
    pub abandoned_slots: usize,
    /// Clients permanently evicted after crashing.
    pub evicted_clients: usize,
    /// Batches advanced with `observe_partial` (quorum reached but some
    /// estimates missing).
    pub partial_batches: usize,
    /// Reports the fault plan delivered more than once; the extra copies
    /// are discarded by the `(batch, slot, attempt)` de-duplication rule.
    pub duplicate_reports: usize,
}

impl FaultStats {
    /// `true` when no counter fired — the session saw no fault handling.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// The record of one tuning session.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct TuningOutcome {
    /// Per-step worst-case times; at least `max_steps` long (the last
    /// algorithm batch may overshoot the budget slightly).
    pub trace: TuningTrace,
    /// The step budget `K` the session was charged for.
    pub steps_budget: usize,
    /// Best point found (by estimate).
    pub best_point: Point,
    /// The estimate that made it best.
    pub best_estimate: f64,
    /// The *true* (noise-free) cost of the best point — what the tuner
    /// actually delivered.
    pub best_true_cost: f64,
    /// Whether the optimizer's own stopping criterion fired.
    pub converged: bool,
    /// Total objective evaluations consumed (all samples).
    pub evaluations: usize,
    /// Quality-over-time: after every optimizer batch, `(steps_consumed,
    /// true cost of the configuration the optimizer would deploy)`. The
    /// last entry equals `best_true_cost` at the end of tuning.
    pub quality_curve: Vec<(usize, f64)>,
    /// Fault-handling counters (all zero on fault-free paths).
    pub faults: FaultStats,
}

impl TuningOutcome {
    /// `Total_Time(K)` — the sum of the first `K = steps_budget` step
    /// times (eq. 2).
    pub fn total_time(&self) -> f64 {
        self.trace
            .total_time_at(self.steps_budget.min(self.trace.len()))
    }

    /// Normalised total time `(1−ρ)·Total_Time` (eq. 23).
    pub fn ntt(&self, rho: f64) -> f64 {
        (1.0 - rho) * self.total_time()
    }

    /// First time step at which the deployed configuration's true cost
    /// dropped to `threshold` or below — the "time to quality" metric
    /// that complements `Total_Time` (a tuner can win eq. 2 while being
    /// slow to good configurations, Fig. 1). `None` when never reached.
    pub fn steps_to_quality(&self, threshold: f64) -> Option<usize> {
        self.quality_curve
            .iter()
            .find(|(_, q)| *q <= threshold)
            .map(|(s, _)| *s)
    }
}

/// Drives optimizers through complete on-line tuning sessions.
#[derive(Debug, Clone, Copy)]
pub struct OnlineTuner {
    cfg: TunerConfig,
}

impl OnlineTuner {
    /// Creates a tuner.
    ///
    /// # Panics
    /// Panics when the budget or processor count is zero.
    pub fn new(cfg: TunerConfig) -> Self {
        assert!(cfg.procs > 0, "tuner needs processors");
        assert!(cfg.max_steps > 0, "tuner needs a positive step budget");
        OnlineTuner { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &TunerConfig {
        &self.cfg
    }

    /// Runs one tuning session to completion.
    ///
    /// The loop: propose → evaluate each point `K` times on the cluster
    /// (recording every consumed time step's `T_k`) → reduce → observe,
    /// until the optimizer converges or the budget is reached; the
    /// remaining steps run the incumbent once per step.
    ///
    /// # Errors
    /// [`ServerError::NoObservations`] when the optimizer never produced
    /// a recommendation (it proposed no batches at all).
    pub fn run<O, M>(
        &self,
        objective: &O,
        noise: &M,
        optimizer: &mut dyn Optimizer,
    ) -> Result<TuningOutcome, ServerError>
    where
        O: Objective + ?Sized,
        M: NoiseModel + ?Sized,
    {
        self.run_traced(objective, noise, optimizer, &Telemetry::disabled())
    }

    /// [`OnlineTuner::run`] with structured tracing: the session becomes
    /// a `tuner.session` span, every optimizer batch emits a
    /// `tuner.batch` event, and the exploit phase, objective cache and
    /// final [`TuningTrace`] metrics are exported at session end.
    ///
    /// The tuner *owns the logical clock*: it is set to the number of
    /// consumed time steps `trace.len()` at every batch boundary, so
    /// identical sessions produce byte-identical traces regardless of
    /// where or when they run. To also record per-iteration optimizer
    /// spans, hand the same handle to the optimizer (e.g.
    /// [`crate::ProOptimizer::set_telemetry`]) before calling this.
    pub fn run_traced<O, M>(
        &self,
        objective: &O,
        noise: &M,
        optimizer: &mut dyn Optimizer,
        tel: &Telemetry,
    ) -> Result<TuningOutcome, ServerError>
    where
        O: Objective + ?Sized,
        M: NoiseModel + ?Sized,
    {
        // objectives are deterministic (noise is applied by the cluster
        // layer), so memoizing repeated probes is exact — converged
        // batches and the quality curve revisit the same points heavily
        let objective = CachedObjective::new(objective);
        let cluster = Cluster::new(self.cfg.procs);
        let mut rng = seeded_rng(self.cfg.seed);
        let mut trace = TuningTrace::new();
        let mut evaluations = 0usize;
        let mut quality_curve: Vec<(usize, f64)> = Vec::new();
        let session = tel.enabled().then(|| {
            tel.set_clock(0);
            tel.span_open(
                "tuner.session",
                vec![
                    Field::new("procs", self.cfg.procs),
                    Field::new("max_steps", self.cfg.max_steps),
                    Field::new("k", self.cfg.estimator.samples()),
                    Field::new("seed", self.cfg.seed),
                ],
            )
        });
        let mut batches = 0usize;

        while trace.len() < self.cfg.max_steps && !optimizer.converged() {
            tel.set_clock(trace.len() as u64);
            let batch = optimizer.propose();
            if batch.is_empty() {
                break;
            }
            let costs: Vec<f64> = batch.iter().map(|p| objective.eval(p)).collect();
            let k = self.cfg.estimator.samples();
            let samples = cluster.run_batch_occupied(
                &costs,
                k,
                self.cfg.mode,
                noise,
                &mut rng,
                &mut trace,
                self.cfg.full_occupancy,
            );
            evaluations += batch.len() * k;
            let estimates: Vec<f64> = samples
                .iter()
                .map(|s| self.cfg.estimator.reduce(s))
                .collect();
            optimizer.observe(&estimates);
            tel.set_clock(trace.len() as u64);
            event!(
                tel,
                "tuner.batch",
                batch = batches,
                points = batch.len(),
                steps = trace.len()
            );
            batches += 1;
            if let Some((rec, _)) = optimizer.recommendation() {
                quality_curve.push((trace.len(), objective.eval(&rec)));
            }
        }

        // deploy what the algorithm recommends (its converged vertex),
        // not the luckiest raw observation — under heavy-tailed noise
        // the two can differ substantially
        let Some((best_point, best_estimate)) = optimizer.recommendation() else {
            if let Some(id) = session {
                tel.set_clock(trace.len() as u64);
                event!(tel, "tuner.failed", error = "no_observations");
                tel.span_close(id);
            }
            return Err(ServerError::NoObservations);
        };
        let best_true_cost = objective.eval(&best_point);

        // exploit: the application keeps running with the tuned
        // parameters for the rest of the budget. Under full occupancy
        // every processor runs it and the barrier waits for the slowest
        // of P draws; otherwise `exploit_width` parallel instances keep
        // running (the paper's simulation: the converged simplex's 2N
        // identical vertices stay the points evaluated each step).
        let width = if self.cfg.full_occupancy {
            self.cfg.procs
        } else {
            self.cfg.exploit_width.clamp(1, self.cfg.procs)
        };
        tel.set_clock(trace.len() as u64);
        let exploit_start = trace.len();
        // every exploit step runs `width` instances of the same cost, so
        // draw each step's observations through the batch observe_n path
        // into one reusable scratch buffer: the per-draw constants (eq.
        // 17's β) derive once per step instead of once per draw, and no
        // step allocates. The uniform stream and the left-to-right max
        // are exactly those of per-draw `execute_step` calls.
        let mut exploit_obs = vec![0.0_f64; width];
        while trace.len() < self.cfg.max_steps {
            noise.observe_n(best_true_cost, &mut rng, &mut exploit_obs);
            let t_k = exploit_obs
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            trace.push(t_k);
        }

        if let Some(id) = session {
            tel.set_clock(trace.len() as u64);
            event!(
                tel,
                "tuner.exploit",
                steps = trace.len() - exploit_start,
                cost = best_true_cost,
                width = width
            );
            event!(
                tel,
                "tuner.done",
                batches = batches,
                evaluations = evaluations,
                best = best_true_cost,
                converged = optimizer.converged()
            );
            objective.emit_telemetry(tel);
            trace.emit_telemetry(tel, None);
            tel.span_close(id);
        }

        Ok(TuningOutcome {
            trace,
            steps_budget: self.cfg.max_steps,
            best_point,
            best_estimate,
            best_true_cost,
            converged: optimizer.converged(),
            evaluations,
            quality_curve,
            faults: FaultStats::default(),
        })
    }

    /// Runs one session against a *non-stationary* environment: the
    /// objective in force switches at the given step boundaries
    /// (`phases[i] = (start_step, objective)`, starts ascending, first
    /// start 0). The optimizer is **not** reset at boundaries — this is
    /// the scenario that motivates continuous monitoring
    /// (`ProConfig::continuous`): a stop-at-convergence tuner keeps
    /// exploiting a configuration that is no longer good, while a
    /// continuous tuner notices the regression through its re-probes and
    /// walks to the new optimum.
    ///
    /// The reported `best_*` fields refer to the *final* phase's
    /// objective.
    ///
    /// # Errors
    /// [`ServerError::NoObservations`] when the optimizer never produced
    /// a recommendation.
    ///
    /// # Panics
    /// Panics when `phases` is empty or the starts are not ascending
    /// from 0.
    pub fn run_phases<M>(
        &self,
        phases: &[(usize, &dyn Objective)],
        noise: &M,
        optimizer: &mut dyn Optimizer,
    ) -> Result<TuningOutcome, ServerError>
    where
        M: NoiseModel + ?Sized,
    {
        assert!(!phases.is_empty(), "need at least one phase");
        assert_eq!(phases[0].0, 0, "first phase must start at step 0");
        assert!(
            phases.windows(2).all(|w| w[0].0 < w[1].0),
            "phase starts must be strictly ascending"
        );
        // one memo per phase: phase objectives differ, so each gets its
        // own exact cache (see `CachedObjective`)
        let cached: Vec<(usize, CachedObjective<'_, dyn Objective>)> = phases
            .iter()
            .map(|&(start, obj)| (start, CachedObjective::new(obj)))
            .collect();
        let objective_at = |step: usize| -> &CachedObjective<'_, dyn Objective> {
            &cached
                .iter()
                .rev()
                .find(|(start, _)| *start <= step)
                .expect("phase exists for every step")
                .1
        };
        let cluster = Cluster::new(self.cfg.procs);
        let mut rng = seeded_rng(self.cfg.seed);
        let mut trace = TuningTrace::new();
        let mut evaluations = 0usize;
        let mut quality_curve: Vec<(usize, f64)> = Vec::new();

        while trace.len() < self.cfg.max_steps && !optimizer.converged() {
            let batch = optimizer.propose();
            if batch.is_empty() {
                break;
            }
            // the environment during this batch is the one in force at
            // its first step (batches are short relative to phases)
            let objective = objective_at(trace.len());
            let costs: Vec<f64> = batch.iter().map(|p| objective.eval(p)).collect();
            let k = self.cfg.estimator.samples();
            let samples = cluster.run_batch_occupied(
                &costs,
                k,
                self.cfg.mode,
                noise,
                &mut rng,
                &mut trace,
                self.cfg.full_occupancy,
            );
            evaluations += batch.len() * k;
            let estimates: Vec<f64> = samples
                .iter()
                .map(|s| self.cfg.estimator.reduce(s))
                .collect();
            optimizer.observe(&estimates);
            if let Some((rec, _)) = optimizer.recommendation() {
                let current = objective_at(trace.len().saturating_sub(1));
                quality_curve.push((trace.len(), current.eval(&rec)));
            }
        }

        let Some((best_point, best_estimate)) = optimizer.recommendation() else {
            return Err(ServerError::NoObservations);
        };
        let final_objective = &cached.last().expect("non-empty phases").1;
        let best_true_cost = final_objective.eval(&best_point);

        let width = if self.cfg.full_occupancy {
            self.cfg.procs
        } else {
            self.cfg.exploit_width.clamp(1, self.cfg.procs)
        };
        let mut exploit_obs = vec![0.0_f64; width];
        while trace.len() < self.cfg.max_steps {
            let cost = objective_at(trace.len()).eval(&best_point);
            noise.observe_n(cost, &mut rng, &mut exploit_obs);
            let t_k = exploit_obs
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            trace.push(t_k);
        }

        Ok(TuningOutcome {
            trace,
            steps_budget: self.cfg.max_steps,
            best_point,
            best_estimate,
            best_true_cost,
            converged: optimizer.converged(),
            evaluations,
            quality_curve,
            faults: FaultStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RandomSearch;
    use crate::pro::ProOptimizer;
    use harmony_params::{ParamDef, ParamSpace};
    use harmony_surface::objective::FnObjective;
    use harmony_variability::noise::Noise;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::integer("x", -20, 20, 1).unwrap(),
            ParamDef::integer("y", -20, 20, 1).unwrap(),
        ])
        .unwrap()
    }

    fn bowl() -> FnObjective<impl Fn(&Point) -> f64> {
        FnObjective::new("bowl", space(), |p| {
            2.0 + 0.05 * (p[0] * p[0] + p[1] * p[1])
        })
    }

    fn cfg(k: Estimator, steps: usize, seed: u64) -> TunerConfig {
        TunerConfig {
            procs: 64,
            max_steps: steps,
            estimator: k,
            mode: SamplingMode::SequentialSteps,
            seed,
            full_occupancy: false,
            exploit_width: 6,
        }
    }

    #[test]
    fn noise_free_session_finds_optimum_and_fills_budget() {
        let obj = bowl();
        let tuner = OnlineTuner::new(cfg(Estimator::Single, 100, 1));
        let mut opt = ProOptimizer::with_defaults(space());
        let out = tuner.run(&obj, &Noise::None, &mut opt).unwrap();
        assert!(out.converged);
        assert_eq!(out.best_point.as_slice(), &[0.0, 0.0]);
        assert_eq!(out.best_true_cost, 2.0);
        assert!(out.trace.len() >= 100);
        // exploit steps cost exactly the optimum under no noise
        let t = out.trace.step_times();
        assert_eq!(t[t.len() - 1], 2.0);
    }

    #[test]
    fn total_time_counts_exactly_k_steps() {
        let obj = bowl();
        let tuner = OnlineTuner::new(cfg(Estimator::Single, 50, 2));
        let mut opt = ProOptimizer::with_defaults(space());
        let out = tuner.run(&obj, &Noise::None, &mut opt).unwrap();
        let manual: f64 = out.trace.step_times()[..50].iter().sum();
        assert!((out.total_time() - manual).abs() < 1e-12);
        assert!((out.ntt(0.2) - 0.8 * out.total_time()).abs() < 1e-9);
    }

    #[test]
    fn multi_sampling_consumes_k_steps_per_batch() {
        // with no noise and sequential sampling, a session with K=3
        // costs ~3x the time steps per algorithm phase; Total_Time over
        // the same budget is therefore larger (the rho=0 line of Fig 10)
        let obj = bowl();
        let t1 = OnlineTuner::new(cfg(Estimator::Single, 60, 3))
            .run(
                &obj,
                &Noise::None,
                &mut ProOptimizer::with_defaults(space()),
            )
            .unwrap();
        let t3 = OnlineTuner::new(cfg(Estimator::MinOfK(3), 60, 3))
            .run(
                &obj,
                &Noise::None,
                &mut ProOptimizer::with_defaults(space()),
            )
            .unwrap();
        // same steps charged
        assert_eq!(t1.steps_budget, t3.steps_budget);
        // K=3 spends ~3x evaluations before converging
        assert!(t3.evaluations > 2 * t1.evaluations);
        // and wastes budget: total time no better
        assert!(t3.total_time() >= t1.total_time() * 0.99);
    }

    #[test]
    fn min_of_k_beats_single_under_heavy_noise() {
        // the core §5 claim, in miniature: with heavy-tailed noise,
        // min-of-3 estimates steer PRO to a better true cost than
        // single samples, averaged over replications
        let obj = bowl();
        let noise = Noise::Pareto {
            alpha: 1.7,
            rho: 0.35,
        };
        let reps = 30;
        let avg = |est: Estimator| -> f64 {
            (0..reps)
                .map(|r| {
                    let tuner = OnlineTuner::new(cfg(est, 120, 1000 + r));
                    let mut opt = ProOptimizer::with_defaults(space());
                    tuner.run(&obj, &noise, &mut opt).unwrap().best_true_cost
                })
                .sum::<f64>()
                / reps as f64
        };
        let single = avg(Estimator::Single);
        let min3 = avg(Estimator::MinOfK(3));
        assert!(min3 <= single + 0.05, "min3={min3} single={single}");
    }

    #[test]
    fn deterministic_given_seed() {
        let obj = bowl();
        let noise = Noise::paper_default(0.2);
        let run = |seed| {
            let tuner = OnlineTuner::new(cfg(Estimator::MinOfK(2), 80, seed));
            let mut opt = ProOptimizer::with_defaults(space());
            tuner.run(&obj, &noise, &mut opt).unwrap().total_time()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn works_with_non_converging_optimizers() {
        let obj = bowl();
        let tuner = OnlineTuner::new(cfg(Estimator::Single, 40, 4));
        let mut opt = RandomSearch::new(space(), 8, 4);
        let out = tuner.run(&obj, &Noise::None, &mut opt).unwrap();
        assert!(!out.converged);
        assert!(out.trace.len() >= 40);
        assert!(out.best_true_cost < 25.0);
    }

    #[test]
    fn quality_curve_tracks_descent() {
        let obj = bowl();
        let tuner = OnlineTuner::new(cfg(Estimator::Single, 100, 1));
        let mut opt = ProOptimizer::with_defaults(space());
        let out = tuner.run(&obj, &Noise::None, &mut opt).unwrap();
        assert!(!out.quality_curve.is_empty());
        // steps are non-decreasing; final quality equals the deployed cost
        assert!(out.quality_curve.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(out.quality_curve.last().unwrap().1, out.best_true_cost);
        // noise-free PRO descends: the last quality is the minimum
        let min_q = out
            .quality_curve
            .iter()
            .map(|(_, q)| *q)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min_q, out.best_true_cost);
        // time-to-quality is monotone in the threshold
        let t_loose = out.steps_to_quality(10.0);
        let t_tight = out.steps_to_quality(2.0);
        assert!(t_loose.is_some() && t_tight.is_some());
        assert!(t_loose.unwrap() <= t_tight.unwrap());
        assert_eq!(out.steps_to_quality(0.5), None); // below the optimum
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_session() {
        let obj = bowl();
        let noise = Noise::paper_default(0.2);
        let tuner = OnlineTuner::new(cfg(Estimator::MinOfK(2), 80, 7));

        let mut plain_opt = ProOptimizer::with_defaults(space());
        let plain = tuner.run(&obj, &noise, &mut plain_opt).unwrap();

        let (tel, sink) = harmony_telemetry::Telemetry::memory();
        let mut traced_opt = ProOptimizer::with_defaults(space());
        traced_opt.set_telemetry(tel.clone());
        let traced = tuner
            .run_traced(&obj, &noise, &mut traced_opt, &tel)
            .unwrap();

        assert_eq!(plain, traced, "telemetry must not perturb the session");
        let summary = harmony_telemetry::Summary::from_records(&sink.take());
        assert_eq!(summary.span_count("tuner.session"), Some(1));
        assert!(summary.span_count("pro.iteration").unwrap() > 0);
        assert!(summary.event_count("tuner.batch").unwrap() > 0);
        assert_eq!(summary.event_count("tuner.done"), Some(1));
        assert_eq!(
            summary.counter_total("trace.steps"),
            Some(traced.trace.len() as u64)
        );
        assert!(summary.counter_total("cache.hits").unwrap() > 0);
    }

    #[test]
    #[should_panic(expected = "positive step budget")]
    fn zero_budget_rejected() {
        OnlineTuner::new(cfg(Estimator::Single, 0, 1));
    }

    #[test]
    fn phased_run_tracks_environment_shift() {
        // phase 1: optimum at (5, 5); phase 2: optimum at (-5, -5).
        // A continuous PRO must end near the *new* optimum.
        let obj_a = FnObjective::new("a", space(), |p| {
            2.0 + 0.05 * ((p[0] - 5.0).powi(2) + (p[1] - 5.0).powi(2))
        });
        let obj_b = FnObjective::new("b", space(), |p| {
            2.0 + 0.05 * ((p[0] + 5.0).powi(2) + (p[1] + 5.0).powi(2))
        });
        let tuner = OnlineTuner::new(cfg(Estimator::Single, 600, 5));
        let pro_cfg = crate::pro::ProConfig {
            continuous: true,
            ..crate::pro::ProConfig::default()
        };
        let mut opt = ProOptimizer::new(space(), pro_cfg);
        let out = tuner
            .run_phases(&[(0, &obj_a), (150, &obj_b)], &Noise::None, &mut opt)
            .unwrap();
        assert!(!out.converged);
        assert_eq!(out.best_point.as_slice(), &[-5.0, -5.0]);
        assert_eq!(out.best_true_cost, 2.0);
    }

    #[test]
    fn stop_at_convergence_misses_environment_shift() {
        // the control: the default (stopping) PRO converges in phase 1
        // and never notices phase 2
        let obj_a = FnObjective::new("a", space(), |p| {
            2.0 + 0.05 * ((p[0] - 5.0).powi(2) + (p[1] - 5.0).powi(2))
        });
        let obj_b = FnObjective::new("b", space(), |p| {
            2.0 + 0.05 * ((p[0] + 5.0).powi(2) + (p[1] + 5.0).powi(2))
        });
        let tuner = OnlineTuner::new(cfg(Estimator::Single, 600, 5));
        let mut opt = ProOptimizer::with_defaults(space());
        let out = tuner
            .run_phases(&[(0, &obj_a), (150, &obj_b)], &Noise::None, &mut opt)
            .unwrap();
        assert!(out.converged);
        assert_eq!(out.best_point.as_slice(), &[5.0, 5.0]); // stale!
        assert!(out.best_true_cost > 2.0);
    }

    #[test]
    #[should_panic(expected = "first phase must start at step 0")]
    fn phases_must_start_at_zero() {
        let obj = bowl();
        let tuner = OnlineTuner::new(cfg(Estimator::Single, 10, 1));
        let mut opt = ProOptimizer::with_defaults(space());
        let _ = tuner.run_phases(
            &[(5, &obj as &dyn harmony_surface::Objective)],
            &Noise::None,
            &mut opt,
        );
    }
}

//! TPE-style surrogate-model optimizer (Bayesian optimization tier).
//!
//! The paper's direct-search methods (PRO/SRO, §3) spend most of their
//! budget walking the simplex; BO-FSS-style tuners instead *model* the
//! observed (configuration, estimate) history and spend each batch
//! where the model says good configurations are likely. This module
//! implements that tier from scratch on std only, as a
//! **Tree-structured Parzen Estimator**:
//!
//! 1. Sort the observed history by estimate and split it at the γ
//!    quantile into a *good* set (the cheapest γ fraction) and a *bad*
//!    set (the rest).
//! 2. Model each set with independent per-dimension kernel-density
//!    estimators: smoothed level-index histograms on discrete axes,
//!    Gaussian kernels mixed with a uniform floor on continuous axes.
//! 3. Draw a deterministic candidate pool from splitmix-hashed unit
//!    coordinates and propose the batch maximizing the density ratio
//!    `ℓ(x)/g(x)` (equivalently `Σ_d ln ℓ_d − ln g_d`).
//!
//! Why TPE instead of a Gaussian process on this substrate: the GS2
//! surfaces are *discrete lattices* with categorical level sets, where
//! a GP needs an ad-hoc kernel over level indices, O(n³) solves, and
//! jittered Cholesky factorizations to stay positive-definite under
//! min-of-K noise. The density-ratio formulation needs only counting
//! and is exactly as discrete as the axes themselves, so every proposal
//! is admissible by construction and the whole model round-trips
//! through the recovery codec as a list of `(point, estimate)` pairs.
//!
//! Determinism: all randomness is a pure function of
//! `(seed, round, candidate index, dimension)` via
//! [`harmony_stats::splitmix::hash01`] — never an RNG object, so
//! checkpoint/restore resumes the exact candidate stream and a resumed
//! session is bit-identical to an uninterrupted one.

use crate::optimizer::{HistoryInterpolator, Incumbent, Optimizer};
use crate::pro::{read_pairs, write_pairs};
use harmony_params::{ParamSpace, Point};
use harmony_recovery::{Checkpoint, CodecError, StateReader, StateWriter};
use harmony_stats::splitmix::hash01;
use harmony_telemetry::{event, Telemetry};

/// Salt decorrelating the startup space-filling stream.
const SALT_STARTUP: u64 = 0x005A_1107;
/// Salt decorrelating the model-phase candidate-pool stream.
const SALT_CANDIDATE: u64 = 0x005A_110C;

/// Tunable knobs of the surrogate optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogateConfig {
    /// Points proposed per batch (the parallel evaluation width).
    pub batch_size: usize,
    /// Observations collected by deterministic space-filling sampling
    /// before the density model takes over (the model needs both a
    /// good and a bad set to split).
    pub startup: usize,
    /// Good-set quantile γ: the cheapest `γ` fraction of the history
    /// forms the "good" density ℓ, the rest the "bad" density g.
    pub gamma: f64,
    /// Candidate-pool size scored per model-phase batch.
    pub candidates: usize,
    /// Smoothing pseudo-count added to every level histogram and to the
    /// continuous uniform floor; keeps both densities strictly positive
    /// so the log-ratio is always finite.
    pub prior_weight: f64,
    /// Continuous-axis kernel bandwidth as a fraction of the parameter
    /// width.
    pub bandwidth: f64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            batch_size: 8,
            startup: 16,
            gamma: 0.25,
            candidates: 64,
            prior_weight: 1.0,
            bandwidth: 0.12,
        }
    }
}

/// The TPE-style surrogate optimizer. See the [module docs](self) for
/// the algorithm and the determinism contract.
///
/// # Example
///
/// The same ask/tell loop as every other optimizer — the driver owns
/// evaluation:
///
/// ```
/// use harmony_core::{Optimizer, SurrogateConfig, SurrogateOptimizer};
/// use harmony_params::{ParamDef, ParamSpace};
///
/// let space = ParamSpace::new(vec![
///     ParamDef::integer("x", -20, 20, 1).unwrap(),
///     ParamDef::integer("y", -20, 20, 1).unwrap(),
/// ])
/// .unwrap();
/// let mut opt = SurrogateOptimizer::new(space, SurrogateConfig::default(), 7);
/// for _ in 0..40 {
///     let batch = opt.propose();
///     let values: Vec<f64> = batch.iter().map(|p| p[0] * p[0] + p[1] * p[1]).collect();
///     opt.observe(&values);
/// }
/// let (best, _) = opt.best().unwrap();
/// assert!(best[0].abs() <= 4.0 && best[1].abs() <= 4.0);
/// ```
pub struct SurrogateOptimizer {
    space: ParamSpace,
    cfg: SurrogateConfig,
    seed: u64,
    /// Every measured `(point, estimate)` pair, in observation order —
    /// the whole model state.
    history: Vec<(Point, f64)>,
    /// Batch awaiting observation (empty between observe and the next
    /// propose).
    pending: Vec<Point>,
    /// Batches observed so far; indexes the candidate hash streams.
    round: usize,
    incumbent: Incumbent,
    /// Measured-history interpolation for [`Optimizer::observe_partial`]
    /// hole filling (kept consistent with PRO/SRO so recovery paths
    /// treat all optimizers alike).
    interp: HistoryInterpolator,
    /// Ascending admissible levels per discrete dimension (`None` for
    /// continuous axes); derived from the space, not checkpointed.
    levels: Vec<Option<Vec<f64>>>,
    tel: Telemetry,
}

/// One per-dimension density: a smoothed level-index histogram
/// (discrete) or a Gaussian mixture over observed coordinates with a
/// uniform floor (continuous). Both are strictly positive everywhere.
enum AxisDensity {
    Discrete {
        log_mass: Vec<f64>,
    },
    Continuous {
        centers: Vec<f64>,
        h: f64,
        width: f64,
        prior: f64,
    },
}

impl AxisDensity {
    fn log_density(&self, levels: Option<&Vec<f64>>, x: f64) -> f64 {
        match self {
            AxisDensity::Discrete { log_mass } => {
                let levels = levels.expect("discrete axis has a level table");
                let idx = level_index(levels, x);
                log_mass[idx]
            }
            AxisDensity::Continuous {
                centers,
                h,
                width,
                prior,
            } => {
                let mut acc = prior / width.max(f64::MIN_POSITIVE);
                for &c in centers {
                    let t = (x - c) / h;
                    acc += (-0.5 * t * t).exp() / (h * (2.0 * std::f64::consts::PI).sqrt());
                }
                (acc / (prior + centers.len() as f64)).ln()
            }
        }
    }
}

/// Index of admissible value `x` in the ascending level table.
fn level_index(levels: &[f64], x: f64) -> usize {
    // levels are exact admissible values, so an exact match exists for
    // every admissible coordinate; fall back to the nearest level for
    // robustness against callers scoring projected floats
    match levels.binary_search_by(|l| l.total_cmp(&x)) {
        Ok(i) => i,
        Err(i) => {
            if i == 0 {
                0
            } else if i >= levels.len() {
                levels.len() - 1
            } else if (x - levels[i - 1]).abs() <= (levels[i] - x).abs() {
                i - 1
            } else {
                i
            }
        }
    }
}

impl SurrogateOptimizer {
    /// Creates the surrogate over `space`. All candidate randomness is
    /// a pure function of `seed` and structural indices.
    pub fn new(space: ParamSpace, cfg: SurrogateConfig, seed: u64) -> Self {
        assert!(cfg.batch_size >= 1, "batch_size must be at least 1");
        assert!(
            cfg.candidates >= cfg.batch_size,
            "candidate pool smaller than batch"
        );
        assert!(
            cfg.gamma > 0.0 && cfg.gamma < 1.0,
            "gamma must be in (0, 1)"
        );
        assert!(cfg.prior_weight > 0.0, "prior_weight must be positive");
        assert!(cfg.bandwidth > 0.0, "bandwidth must be positive");
        let levels = space
            .params()
            .iter()
            .map(|p| {
                p.cardinality()
                    .map(|m| (0..m).map(|i| p.level(i)).collect())
            })
            .collect();
        let interp = HistoryInterpolator::new(&space);
        SurrogateOptimizer {
            space,
            cfg,
            seed,
            history: Vec::new(),
            pending: Vec::new(),
            round: 0,
            incumbent: Incumbent::new(),
            interp,
            levels,
            tel: Telemetry::disabled(),
        }
    }

    /// The surrogate with default knobs (the T8 benchmark
    /// configuration).
    pub fn with_defaults(space: ParamSpace, seed: u64) -> Self {
        SurrogateOptimizer::new(space, SurrogateConfig::default(), seed)
    }

    /// The configuration in use.
    pub fn config(&self) -> &SurrogateConfig {
        &self.cfg
    }

    /// Observed `(point, estimate)` pairs (the model's training set).
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Batches observed so far.
    pub fn rounds(&self) -> usize {
        self.round
    }

    /// Attaches a telemetry handle: every batch decision emits a
    /// `surrogate.decision` event (startup vs model phase, good/bad
    /// split sizes, pool size). The caller drives the logical clock,
    /// exactly as with [`crate::ProOptimizer::set_telemetry`].
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// A point from hashed unit coordinates in stream `(salt, k)`.
    fn hashed_point(&self, salt: u64, k: u64) -> Point {
        let unit: Vec<f64> = (0..self.space.dims())
            .map(|d| hash01(self.seed, salt, k, d as u64))
            .collect();
        self.space.point_from_unit(&unit)
    }

    /// Deterministic space-filling startup batch for the current round.
    fn startup_batch(&self) -> Vec<Point> {
        let b = self.cfg.batch_size;
        (0..b)
            .map(|i| self.hashed_point(SALT_STARTUP, (self.round * b + i) as u64))
            .collect()
    }

    /// Builds one per-dimension density set from the coordinates of
    /// `members` (indices into the history).
    fn densities(&self, members: &[usize]) -> Vec<AxisDensity> {
        (0..self.space.dims())
            .map(|d| match &self.levels[d] {
                Some(levels) => {
                    let m = levels.len();
                    let mut counts = vec![0usize; m];
                    for &i in members {
                        counts[level_index(levels, self.history[i].0[d])] += 1;
                    }
                    let total = members.len() as f64 + self.cfg.prior_weight;
                    let log_mass = counts
                        .iter()
                        .map(|&c| ((c as f64 + self.cfg.prior_weight / m as f64) / total).ln())
                        .collect();
                    AxisDensity::Discrete { log_mass }
                }
                None => {
                    let p = self.space.param(d);
                    AxisDensity::Continuous {
                        centers: members.iter().map(|&i| self.history[i].0[d]).collect(),
                        h: (self.cfg.bandwidth * p.width()).max(f64::MIN_POSITIVE),
                        width: p.width(),
                        prior: self.cfg.prior_weight,
                    }
                }
            })
            .collect()
    }

    /// Model-phase batch: split the history at the γ quantile, build
    /// the good/bad densities, score a hashed candidate pool by the
    /// log density ratio, and keep the best distinct `batch_size`.
    fn model_batch(&self) -> (Vec<Point>, usize, usize) {
        let n = self.history.len();
        let mut order: Vec<usize> = (0..n).collect();
        // total_cmp: a single NaN estimate sorts above every finite
        // value instead of poisoning the comparator (NaN hardening)
        order.sort_by(|&a, &b| self.history[a].1.total_cmp(&self.history[b].1));
        let n_good = ((self.cfg.gamma * n as f64).ceil() as usize).clamp(1, n - 1);
        let (good, bad) = order.split_at(n_good);
        let good_d = self.densities(good);
        let bad_d = self.densities(bad);

        let mut scored: Vec<(f64, usize, Point)> = (0..self.cfg.candidates)
            .map(|c| {
                let k = (self.round * self.cfg.candidates + c) as u64;
                let cand = self.hashed_point(SALT_CANDIDATE, k);
                let score: f64 = (0..self.space.dims())
                    .map(|d| {
                        good_d[d].log_density(self.levels[d].as_ref(), cand[d])
                            - bad_d[d].log_density(self.levels[d].as_ref(), cand[d])
                    })
                    .sum();
                (score, c, cand)
            })
            .collect();
        // highest ratio first; candidate index breaks ties so the
        // selection is a pure function of the pool
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut batch: Vec<Point> = Vec::with_capacity(self.cfg.batch_size);
        for (_, _, cand) in &scored {
            if !batch.contains(cand) {
                batch.push(cand.clone());
                if batch.len() == self.cfg.batch_size {
                    break;
                }
            }
        }
        // tiny lattices can hold fewer distinct candidates than the
        // batch width; pad with the top candidate (re-measuring the
        // favourite refines its estimate under noise)
        while batch.len() < self.cfg.batch_size {
            batch.push(scored[0].2.clone());
        }
        (batch, n_good, n - n_good)
    }

    /// Generates the next pending batch if none is outstanding.
    fn refill_pending(&mut self) {
        if !self.pending.is_empty() {
            return;
        }
        if self.history.len() < self.cfg.startup {
            self.pending = self.startup_batch();
            event!(
                self.tel,
                "surrogate.decision",
                action = "startup",
                round = self.round,
                points = self.pending.len(),
                observed = self.history.len()
            );
        } else {
            let (batch, n_good, n_bad) = self.model_batch();
            self.pending = batch;
            event!(
                self.tel,
                "surrogate.decision",
                action = "model",
                round = self.round,
                points = self.pending.len(),
                good = n_good,
                bad = n_bad,
                pool = self.cfg.candidates
            );
        }
    }

    /// Records one measured pair into every history structure.
    fn record(&mut self, point: &Point, value: f64) {
        self.incumbent.offer(point, value);
        self.interp.record(point, value);
        self.history.push((point.clone(), value));
    }
}

impl Optimizer for SurrogateOptimizer {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Vec<Point> {
        // the model never exhausts: re-measuring refines estimates under
        // noise, so the driver's budget is the only stopping rule and
        // the batch is never empty (empty-iff-finished with finished ≡
        // false)
        self.refill_pending();
        self.pending.clone()
    }

    fn observe(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.pending.len(),
            "observe: expected {} values, got {}",
            self.pending.len(),
            values.len()
        );
        assert!(!self.pending.is_empty(), "observe before propose");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "observe: non-finite objective value"
        );
        let pending = std::mem::take(&mut self.pending);
        for (p, &v) in pending.iter().zip(values.iter()) {
            self.record(p, v);
        }
        self.round += 1;
    }

    fn observe_partial(&mut self, values: &[Option<f64>]) {
        assert_eq!(
            values.len(),
            self.pending.len(),
            "observe_partial: expected {} values, got {}",
            self.pending.len(),
            values.len()
        );
        assert!(!self.pending.is_empty(), "observe before propose");
        // a population model needs no synthetic substitutes: only the
        // measured pairs enter the densities, so holes simply shrink
        // this round's training contribution (the interpolator still
        // records them for parity with PRO/SRO recovery semantics)
        let pending = std::mem::take(&mut self.pending);
        let mut holes = 0usize;
        for (p, v) in pending.iter().zip(values.iter()) {
            match *v {
                Some(v) => {
                    assert!(v.is_finite(), "observe_partial: non-finite objective value");
                    self.record(p, v);
                }
                None => holes += 1,
            }
        }
        event!(
            self.tel,
            "surrogate.decision",
            action = "partial",
            round = self.round,
            holes = holes,
            measured = pending.len() - holes
        );
        self.round += 1;
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.incumbent.get()
    }

    fn recommendation(&self) -> Option<(Point, f64)> {
        // deploy the good-set representative: the minimum-estimate pair
        // (for a density model the incumbent *is* the deployment pick)
        self.incumbent.get()
    }

    fn name(&self) -> &str {
        "surrogate"
    }

    fn as_checkpoint(&self) -> Option<&dyn Checkpoint> {
        Some(self)
    }

    fn as_checkpoint_mut(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

impl Checkpoint for SurrogateOptimizer {
    fn save_state(&self, w: &mut StateWriter) {
        w.tag("surrogate");
        w.u64(self.seed);
        write_pairs(w, &self.history);
        w.points(&self.pending);
        w.usize(self.round);
        self.incumbent.save_state(w);
        self.interp.save_state(w);
    }

    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), CodecError> {
        r.tag("surrogate")?;
        self.seed = r.u64()?;
        self.history = read_pairs(r)?;
        self.pending = r.points()?;
        self.round = r.usize()?;
        self.incumbent.restore_state(r)?;
        self.interp.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_params::ParamDef;
    use harmony_recovery::{restore_from_slice, save_to_vec};

    fn lattice_space(lo: i64, hi: i64) -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::integer("x", lo, hi, 1).unwrap(),
            ParamDef::integer("y", lo, hi, 1).unwrap(),
        ])
        .unwrap()
    }

    fn drive<F: Fn(&Point) -> f64>(opt: &mut SurrogateOptimizer, f: F, batches: usize) {
        for _ in 0..batches {
            let batch = opt.propose();
            assert!(!batch.is_empty());
            let vals: Vec<f64> = batch.iter().map(&f).collect();
            opt.observe(&vals);
        }
    }

    #[test]
    fn finds_bowl_minimum_neighbourhood() {
        let space = lattice_space(-50, 50);
        let mut opt = SurrogateOptimizer::with_defaults(space, 11);
        drive(&mut opt, |p| p[0] * p[0] + p[1] * p[1] + 3.0, 60);
        let (best, val) = opt.best().unwrap();
        assert!(
            val < 3.0 + 200.0,
            "surrogate stuck far from optimum: {best:?} @ {val}"
        );
    }

    #[test]
    fn beats_uniform_random_at_equal_budget() {
        // the model phase must concentrate probes: compare the mean best
        // value against pure startup-style sampling with the same budget
        let space = lattice_space(-50, 50);
        let f = |p: &Point| (p[0] - 17.0).powi(2) + (p[1] + 23.0).powi(2);
        let mut surrogate_best = 0.0;
        let mut random_best = 0.0;
        for seed in 0..5u64 {
            let mut opt = SurrogateOptimizer::with_defaults(space.clone(), seed);
            drive(&mut opt, f, 40);
            surrogate_best += opt.best().unwrap().1;
            let mut rnd = crate::baselines::RandomSearch::new(space.clone(), 8, seed);
            for _ in 0..40 {
                let batch = rnd.propose();
                let vals: Vec<f64> = batch.iter().map(f).collect();
                rnd.observe(&vals);
            }
            random_best += rnd.best().unwrap().1;
        }
        assert!(
            surrogate_best < random_best,
            "surrogate {surrogate_best} should beat random {random_best}"
        );
    }

    #[test]
    fn all_proposals_are_admissible() {
        let space = ParamSpace::new(vec![
            ParamDef::integer("x", 0, 30, 3).unwrap(),
            ParamDef::levels("y", vec![1.0, 2.0, 5.0, 9.0]).unwrap(),
            ParamDef::continuous("z", -1.0, 1.0).unwrap(),
        ])
        .unwrap();
        let mut opt = SurrogateOptimizer::with_defaults(space.clone(), 3);
        for _ in 0..30 {
            let batch = opt.propose();
            for p in &batch {
                assert!(space.is_admissible(p), "inadmissible proposal {p:?}");
            }
            let vals: Vec<f64> = batch.iter().map(|p| p[0] + p[1] + p[2]).collect();
            opt.observe(&vals);
        }
    }

    #[test]
    fn deterministic_given_same_observations() {
        let space = lattice_space(-20, 20);
        let f = |p: &Point| (p[0] - 3.0).powi(2) + (p[1] - 2.0).powi(2);
        let run = || {
            let mut opt = SurrogateOptimizer::with_defaults(space.clone(), 5);
            let mut log = Vec::new();
            for _ in 0..30 {
                let batch = opt.propose();
                log.extend(batch.iter().map(|p| (p[0], p[1])));
                let vals: Vec<f64> = batch.iter().map(f).collect();
                opt.observe(&vals);
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observe_partial_complete_batch_matches_observe() {
        let space = lattice_space(-20, 20);
        let f = |p: &Point| (p[0] - 3.0).powi(2) + (p[1] - 2.0).powi(2);
        let run = |partial: bool| {
            let mut opt = SurrogateOptimizer::with_defaults(space.clone(), 5);
            let mut log = Vec::new();
            for _ in 0..30 {
                let batch = opt.propose();
                log.extend(batch.iter().map(|p| (p[0], p[1])));
                if partial {
                    let vals: Vec<Option<f64>> = batch.iter().map(|p| Some(f(p))).collect();
                    opt.observe_partial(&vals);
                } else {
                    let vals: Vec<f64> = batch.iter().map(f).collect();
                    opt.observe(&vals);
                }
            }
            log
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn observe_partial_with_holes_keeps_proposing() {
        let space = lattice_space(-20, 20);
        let f = |p: &Point| p[0].abs() + p[1].abs();
        let mut opt = SurrogateOptimizer::with_defaults(space, 9);
        let mut k = 0usize;
        for _ in 0..30 {
            let batch = opt.propose();
            assert!(!batch.is_empty());
            let vals: Vec<Option<f64>> = batch
                .iter()
                .map(|p| {
                    k += 1;
                    if k.is_multiple_of(4) {
                        None
                    } else {
                        Some(f(p))
                    }
                })
                .collect();
            opt.observe_partial(&vals);
        }
        assert!(opt.best().is_some());
        assert!(opt.history_len() > 0);
    }

    #[test]
    fn checkpoint_roundtrip_resumes_identically() {
        let space = lattice_space(-20, 20);
        let f = |p: &Point| (p[0] + 7.0).powi(2) + (p[1] - 5.0).powi(2);
        let mut opt = SurrogateOptimizer::with_defaults(space.clone(), 13);
        drive(&mut opt, f, 10);
        let bytes = save_to_vec(&opt);
        let mut restored = SurrogateOptimizer::with_defaults(space, 0);
        restore_from_slice(&mut restored, &bytes).unwrap();
        // identical futures: both continue with the same proposals
        for _ in 0..10 {
            let a = opt.propose();
            let b = restored.propose();
            assert_eq!(a, b);
            let va: Vec<f64> = a.iter().map(f).collect();
            opt.observe(&va);
            restored.observe(&va);
        }
        assert_eq!(opt.best(), restored.best());
    }

    #[test]
    fn model_phase_engages_after_startup() {
        let space = lattice_space(-10, 10);
        let cfg = SurrogateConfig::default();
        let mut opt = SurrogateOptimizer::new(space, cfg, 21);
        let mut rounds = 0;
        while opt.history_len() < cfg.startup {
            let batch = opt.propose();
            let vals: Vec<f64> = batch.iter().map(|p| p[0] * p[0] + p[1] * p[1]).collect();
            opt.observe(&vals);
            rounds += 1;
            assert!(rounds < 100, "startup never completed");
        }
        // next batch comes from the density model and is still valid
        let batch = opt.propose();
        assert_eq!(batch.len(), cfg.batch_size);
    }

    #[test]
    fn nan_estimate_does_not_poison_the_model() {
        // NaN cannot arrive via observe (asserted finite), but a
        // checkpoint written by a future version might carry one; the
        // total_cmp sort must keep the model usable
        let space = lattice_space(-10, 10);
        let mut opt = SurrogateOptimizer::with_defaults(space.clone(), 2);
        drive(&mut opt, |p| p[0] * p[0] + p[1] * p[1], 4);
        opt.history.push((space.center(), f64::NAN));
        let (batch, n_good, _) = opt.model_batch();
        assert_eq!(batch.len(), opt.cfg.batch_size);
        assert!(n_good >= 1);
        for p in &batch {
            assert!(space.is_admissible(p));
        }
    }

    #[test]
    fn tiny_lattice_pads_batch() {
        let space = ParamSpace::new(vec![ParamDef::integer("x", 0, 1, 1).unwrap()]).unwrap();
        let cfg = SurrogateConfig {
            startup: 2,
            ..SurrogateConfig::default()
        };
        let mut opt = SurrogateOptimizer::new(space, cfg, 1);
        for _ in 0..6 {
            let batch = opt.propose();
            assert_eq!(batch.len(), opt.cfg.batch_size);
            let vals: Vec<f64> = batch.iter().map(|p| p[0]).collect();
            opt.observe(&vals);
        }
    }

    #[test]
    #[should_panic(expected = "observe: expected")]
    fn wrong_observation_length_panics() {
        let space = lattice_space(-5, 5);
        let mut opt = SurrogateOptimizer::with_defaults(space, 1);
        let n = opt.propose().len();
        assert!(n > 1);
        opt.observe(&[1.0]);
    }

    #[test]
    fn telemetry_emits_decisions_without_perturbing_the_trajectory() {
        let space = lattice_space(-10, 10);
        let f = |p: &Point| p[0] * p[0] + p[1] * p[1];
        let mut plain = SurrogateOptimizer::with_defaults(space.clone(), 5);
        drive(&mut plain, f, 6);

        let (tel, sink) = harmony_telemetry::Telemetry::memory();
        let mut traced = SurrogateOptimizer::with_defaults(space, 5);
        traced.set_telemetry(tel);
        drive(&mut traced, f, 6);

        assert_eq!(plain.recommendation(), traced.recommendation());
        let records = sink.take();
        let decisions: Vec<_> = records
            .iter()
            .filter(|r| r.name == "surrogate.decision")
            .collect();
        assert!(decisions.len() >= 6, "one decision event per refill");
        let has_action = |want: &str| {
            decisions.iter().any(|r| {
                r.fields
                    .iter()
                    .any(|f| f.key == "action" && format!("{:?}", f.value).contains(want))
            })
        };
        assert!(has_action("startup"), "startup decisions traced");
        assert!(has_action("model"), "model decisions traced");
    }
}

//! Tunable parameter spaces and simplex geometry for on-line parameter tuning.
//!
//! This crate implements the *parameter description* layer of an
//! Active-Harmony-style tuning system, following Tabatabaee, Tiwari &
//! Hollingsworth, *"Parallel Parameter Tuning for Applications with
//! Performance Variability"* (SC 2005):
//!
//! * [`ParamDef`] / [`ParamKind`] — a single tunable parameter: continuous,
//!   integer-stepped, or an explicit list of admissible levels,
//! * [`ParamSpace`] — the admissible region (the constrained optimization
//!   domain), including the paper's **projection operator** `Π(·)`
//!   (§3.2.1) that maps arbitrary points produced by simplex transforms
//!   back onto admissible points, rounding discrete coordinates *toward
//!   the transformation center*,
//! * [`Point`] — a point in `R^N` with the affine arithmetic used by the
//!   rank-ordering transforms,
//! * [`Simplex`] — the vertex set maintained by direct-search algorithms,
//!   with reflection / expansion / shrink transforms around the best
//!   vertex (§3.2, Fig. 2) and degeneracy (span) checking,
//! * [`init`] — initial-simplex constructions: the minimal `N+1`-vertex
//!   simplex and the symmetric `2N`-vertex simplex of §3.2.3 / §6.1.
//!
//! * [`spec`] — a compact textual space specification
//!   (`"ntheta int 16 128 step 8; nodes levels 1,2,4"`) for CLI tools
//!   and config files.
//!
//! The crate is dependency-free; randomness is injected by callers through
//! unit-interval coordinates (see [`ParamSpace::point_from_unit`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod param;
mod point;
mod simplex;
mod space;

pub mod init;
pub mod spec;

pub use error::ParamError;
pub use param::{ParamDef, ParamKind};
pub use point::Point;
pub use simplex::{Simplex, StepKind};
pub use space::{LatticeIter, ParamSpace, Rounding};

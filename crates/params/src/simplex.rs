use crate::{ParamError, Point};

/// The three simplex transformations of the rank-ordering algorithms
/// (Fig. 2 of the paper), always taken *around the best vertex* `v⁰`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// `vʲ ↦ 2·v⁰ − vʲ`
    Reflect,
    /// `vʲ ↦ 3·v⁰ − 2·vʲ`
    Expand,
    /// `vʲ ↦ ½(v⁰ + vʲ)`
    Shrink,
}

impl StepKind {
    /// Applies the transform to a single vertex around `center`.
    pub fn apply(self, vertex: &Point, center: &Point) -> Point {
        match self {
            StepKind::Reflect => vertex.reflect_through(center),
            StepKind::Expand => vertex.expand_through(center),
            StepKind::Shrink => vertex.shrink_toward(center),
        }
    }
}

/// A set of `m ≥ 2` vertices in `R^N` maintained by a direct-search
/// algorithm.
///
/// Unlike the classical Nelder–Mead polytope (always `N+1` vertices), the
/// rank-ordering algorithms allow any `m ≥ N+1`; the paper finds a
/// symmetric `2N`-vertex simplex "performs much better" on discrete
/// problems (§3.2.3, Fig. 9).
///
/// The simplex is purely geometric — objective values are tracked by the
/// optimizer, which is responsible for keeping vertex order in sync.
#[derive(Debug, Clone, PartialEq)]
pub struct Simplex {
    verts: Vec<Point>,
}

impl Simplex {
    /// Creates a simplex, validating that there are at least two vertices
    /// of equal, nonzero dimensionality with finite coordinates.
    pub fn new(verts: Vec<Point>) -> Result<Self, ParamError> {
        if verts.len() < 2 {
            return Err(ParamError::InvalidSimplex(format!(
                "need at least 2 vertices, got {}",
                verts.len()
            )));
        }
        let n = verts[0].dims();
        if n == 0 {
            return Err(ParamError::InvalidSimplex(
                "vertices have zero dimension".into(),
            ));
        }
        for (i, v) in verts.iter().enumerate() {
            if v.dims() != n {
                return Err(ParamError::InvalidSimplex(format!(
                    "vertex {i} has dimension {} (expected {n})",
                    v.dims()
                )));
            }
            if v.has_non_finite() {
                return Err(ParamError::InvalidSimplex(format!(
                    "vertex {i} has non-finite coordinates"
                )));
            }
        }
        Ok(Simplex { verts })
    }

    /// Number of vertices `m`.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Always false — a simplex has at least two vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dimensionality `N` of the ambient space.
    pub fn dims(&self) -> usize {
        self.verts[0].dims()
    }

    /// The vertices.
    pub fn vertices(&self) -> &[Point] {
        &self.verts
    }

    /// The `i`-th vertex.
    pub fn vertex(&self, i: usize) -> &Point {
        &self.verts[i]
    }

    /// Replaces the `i`-th vertex.
    ///
    /// # Panics
    /// Panics if the replacement has a different dimensionality.
    pub fn set_vertex(&mut self, i: usize, v: Point) {
        assert_eq!(v.dims(), self.dims(), "set_vertex dimension mismatch");
        self.verts[i] = v;
    }

    /// Reorders vertices by the permutation `order` (new position `k`
    /// holds old vertex `order[k]`), as done after every rank-ordering
    /// iteration so that `f(v⁰) ≤ … ≤ f(vⁿ)`.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..len`.
    pub fn permute(&mut self, order: &[usize]) {
        assert_eq!(order.len(), self.len(), "permutation length mismatch");
        let m = self.len();
        if m <= 128 {
            // validate and apply with bitmasks — no allocation; this is
            // the every-iteration path (m = 2N is small)
            let mut seen: u128 = 0;
            for &i in order {
                assert!(i < m && seen & (1 << i) == 0, "order is not a permutation");
                seen |= 1 << i;
            }
            // in-place cycle-following: position k receives old vertex
            // order[k]
            let mut done: u128 = 0;
            for start in 0..m {
                if done & (1 << start) != 0 {
                    continue;
                }
                let mut cur = start;
                loop {
                    done |= 1 << cur;
                    let src = order[cur];
                    if src == start {
                        break;
                    }
                    self.verts.swap(cur, src);
                    cur = src;
                }
            }
        } else {
            let mut seen = vec![false; m];
            for &i in order {
                assert!(i < m && !seen[i], "order is not a permutation");
                seen[i] = true;
            }
            self.verts = order.iter().map(|&i| self.verts[i].clone()).collect();
        }
    }

    /// Applies `kind` to every vertex except `center_idx`, returning the
    /// transformed points in vertex order (the center keeps its place).
    /// This is one whole-simplex step of Algorithms 1/2.
    pub fn transform_around(&self, center_idx: usize, kind: StepKind) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.len() - 1);
        self.transform_around_into(center_idx, kind, &mut out);
        out
    }

    /// [`Simplex::transform_around`] writing into a caller-owned buffer
    /// (cleared first), so optimizer iterations reuse one allocation for
    /// every whole-simplex step.
    pub fn transform_around_into(&self, center_idx: usize, kind: StepKind, out: &mut Vec<Point>) {
        out.clear();
        let center = &self.verts[center_idx];
        out.extend(
            self.verts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != center_idx)
                .map(|(_, v)| kind.apply(v, center)),
        );
    }

    /// The centroid of all vertices.
    pub fn centroid(&self) -> Point {
        let w = 1.0 / self.len() as f64;
        Point::affine(&self.verts.iter().map(|v| (w, v)).collect::<Vec<_>>())
    }

    /// The centroid of all vertices *except* `excluded` — the anchor used
    /// by classical Nelder–Mead (eq. 3 of the paper).
    pub fn centroid_excluding(&self, excluded: usize) -> Point {
        let w = 1.0 / (self.len() - 1) as f64;
        let terms: Vec<_> = self
            .verts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != excluded)
            .map(|(_, v)| (w, v))
            .collect();
        Point::affine(&terms)
    }

    /// The largest pairwise Chebyshev distance between vertices — zero
    /// exactly when all vertices coincide (the discrete convergence test
    /// of §3.2.2).
    pub fn diameter(&self) -> f64 {
        let mut d: f64 = 0.0;
        for i in 0..self.len() {
            for j in (i + 1)..self.len() {
                d = d.max(self.verts[i].chebyshev(&self.verts[j]));
            }
        }
        d
    }

    /// True when every vertex is within `tol` (Chebyshev) of the first.
    pub fn collapsed(&self, tol: f64) -> bool {
        self.diameter() <= tol
    }

    /// The rank of the edge matrix `{vʲ − v⁰}` computed by Gaussian
    /// elimination with partial pivoting and tolerance `tol`.
    ///
    /// A simplex *spans* the space (is non-degenerate) iff the rank is
    /// `N`; Nelder–Mead can deform its polytope until this fails, which is
    /// one of the shortcomings motivating rank ordering (§3.1).
    pub fn rank(&self, tol: f64) -> usize {
        let n = self.dims();
        let m = self.len() - 1;
        // rows = edge vectors from vertex 0
        let mut a: Vec<Vec<f64>> = (1..self.len())
            .map(|j| {
                (0..n)
                    .map(|k| self.verts[j][k] - self.verts[0][k])
                    .collect()
            })
            .collect();
        let mut rank = 0;
        let mut row = 0;
        for col in 0..n {
            if row >= m {
                break;
            }
            // find pivot
            let (pivot_row, pivot_val) =
                (row..m)
                    .map(|r| (r, a[r][col].abs()))
                    .fold(
                        (row, 0.0),
                        |acc, (r, v)| if v > acc.1 { (r, v) } else { acc },
                    );
            if pivot_val <= tol {
                continue;
            }
            a.swap(row, pivot_row);
            let pivot_row_vals = a[row].clone();
            for below in a.iter_mut().skip(row + 1) {
                let factor = below[col] / pivot_row_vals[col];
                for (b, pv) in below.iter_mut().zip(&pivot_row_vals).skip(col) {
                    *b -= factor * pv;
                }
            }
            rank += 1;
            row += 1;
        }
        rank
    }

    /// True when the simplex spans the full `N`-dimensional space.
    pub fn spans_space(&self, tol: f64) -> bool {
        self.rank(tol) == self.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::from(c)
    }

    fn tri() -> Simplex {
        // the Fig. 2 style 3-point simplex in 2-D
        Simplex::new(vec![p(&[1.0, 1.0]), p(&[3.0, 1.0]), p(&[2.0, 3.0])]).unwrap()
    }

    #[test]
    fn construction_validations() {
        assert!(Simplex::new(vec![p(&[1.0])]).is_err());
        assert!(Simplex::new(vec![p(&[1.0]), p(&[1.0, 2.0])]).is_err());
        assert!(Simplex::new(vec![p(&[]), p(&[])]).is_err());
        assert!(Simplex::new(vec![p(&[1.0]), p(&[f64::NAN])]).is_err());
        assert!(Simplex::new(vec![p(&[1.0]), p(&[2.0])]).is_ok());
    }

    #[test]
    fn reflect_around_best_matches_figure2() {
        let s = tri();
        let reflected = s.transform_around(0, StepKind::Reflect);
        assert_eq!(reflected.len(), 2);
        // 2*(1,1) - (3,1) = (-1,1);  2*(1,1) - (2,3) = (0,-1)
        assert_eq!(reflected[0], p(&[-1.0, 1.0]));
        assert_eq!(reflected[1], p(&[0.0, -1.0]));
    }

    #[test]
    fn expand_around_best_matches_figure2() {
        let s = tri();
        let expanded = s.transform_around(0, StepKind::Expand);
        // 3*(1,1) - 2*(3,1) = (-3,1);  3*(1,1) - 2*(2,3) = (-1,-3)
        assert_eq!(expanded[0], p(&[-3.0, 1.0]));
        assert_eq!(expanded[1], p(&[-1.0, -3.0]));
    }

    #[test]
    fn shrink_around_best_matches_figure2() {
        let s = tri();
        let shrunk = s.transform_around(0, StepKind::Shrink);
        // midpoints with (1,1)
        assert_eq!(shrunk[0], p(&[2.0, 1.0]));
        assert_eq!(shrunk[1], p(&[1.5, 2.0]));
    }

    #[test]
    fn transform_around_nonzero_center() {
        let s = tri();
        let reflected = s.transform_around(2, StepKind::Reflect);
        // around (2,3): 2*(2,3)-(1,1) = (3,5); 2*(2,3)-(3,1) = (1,5)
        assert_eq!(reflected[0], p(&[3.0, 5.0]));
        assert_eq!(reflected[1], p(&[1.0, 5.0]));
    }

    #[test]
    fn centroid_and_exclusion() {
        let s = tri();
        assert!(s.centroid().approx_eq(&p(&[2.0, 5.0 / 3.0]), 1e-12));
        // excluding the worst vertex (index 2): centroid of first two
        assert!(s.centroid_excluding(2).approx_eq(&p(&[2.0, 1.0]), 1e-12));
    }

    #[test]
    fn diameter_and_collapse() {
        let s = tri();
        assert_eq!(s.diameter(), 2.0);
        assert!(!s.collapsed(1.0));
        let c = Simplex::new(vec![p(&[1.0, 1.0]), p(&[1.0, 1.0]), p(&[1.0, 1.0])]).unwrap();
        assert!(c.collapsed(0.0));
    }

    #[test]
    fn rank_full_and_degenerate() {
        assert!(tri().spans_space(1e-12));
        // collinear points: rank 1 in 2-D
        let degenerate =
            Simplex::new(vec![p(&[0.0, 0.0]), p(&[1.0, 1.0]), p(&[2.0, 2.0])]).unwrap();
        assert_eq!(degenerate.rank(1e-12), 1);
        assert!(!degenerate.spans_space(1e-12));
    }

    #[test]
    fn rank_of_2n_simplex() {
        // symmetric 2N simplex around center spans the space even though
        // it has 2N (> N+1) vertices
        let s = Simplex::new(vec![
            p(&[1.0, 0.0]),
            p(&[-1.0, 0.0]),
            p(&[0.0, 1.0]),
            p(&[0.0, -1.0]),
        ])
        .unwrap();
        assert!(s.spans_space(1e-12));
    }

    #[test]
    fn permute_reorders() {
        let mut s = tri();
        s.permute(&[2, 0, 1]);
        assert_eq!(s.vertex(0), &p(&[2.0, 3.0]));
        assert_eq!(s.vertex(1), &p(&[1.0, 1.0]));
        assert_eq!(s.vertex(2), &p(&[3.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_duplicates() {
        tri().permute(&[0, 0, 1]);
    }

    #[test]
    fn permute_matches_collect_reference_on_all_orders() {
        // exhaustively check the in-place cycle application against the
        // straightforward clone-and-collect semantics for m = 4
        let verts = [
            p(&[0.0, 0.0]),
            p(&[1.0, 0.0]),
            p(&[0.0, 1.0]),
            p(&[1.0, 1.0]),
        ];
        let mut orders = vec![];
        for a in 0..4usize {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let o = [a, b, c, d];
                        let mut sorted = o;
                        sorted.sort_unstable();
                        if sorted == [0, 1, 2, 3] {
                            orders.push(o);
                        }
                    }
                }
            }
        }
        assert_eq!(orders.len(), 24);
        for order in orders {
            let mut s = Simplex::new(verts.to_vec()).unwrap();
            s.permute(&order);
            for (k, &src) in order.iter().enumerate() {
                assert_eq!(s.vertex(k), &verts[src], "order {order:?} position {k}");
            }
        }
    }

    #[test]
    fn transform_around_into_reuses_buffer() {
        let s = tri();
        let mut buf = Vec::new();
        s.transform_around_into(0, StepKind::Reflect, &mut buf);
        assert_eq!(buf, s.transform_around(0, StepKind::Reflect));
        s.transform_around_into(1, StepKind::Shrink, &mut buf);
        assert_eq!(buf, s.transform_around(1, StepKind::Shrink));
    }

    #[test]
    fn reflection_preserves_span() {
        // reflecting all non-best vertices is an affine map with full-rank
        // linear part, so span is preserved
        let s = tri();
        let mut refl = vec![s.vertex(0).clone()];
        refl.extend(s.transform_around(0, StepKind::Reflect));
        let rs = Simplex::new(refl).unwrap();
        assert!(rs.spans_space(1e-12));
    }
}

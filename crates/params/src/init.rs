//! Initial-simplex constructions (§3.2.3, studied in §6.1 / Fig. 9).
//!
//! Both constructions are anchored at the center `c` of the admissible
//! region with per-axis offsets `bᵢ = r·(u(i) − l(i))/2`, where `r` is the
//! *initial simplex relative size*. The paper's default is `r = 0.2`
//! (equivalently `bᵢ = 0.1·(u(i) − l(i))`).
//!
//! On coarse lattices the projection `Π` can round an offset vertex back
//! onto the center; the builders then push that coordinate to the
//! adjacent admissible level instead so the simplex keeps its shape
//! wherever the lattice permits.

use crate::{ParamError, ParamSpace, Point, Rounding, Simplex};

/// The paper's default relative size for the initial simplex (§3.2.3).
pub const DEFAULT_RELATIVE_SIZE: f64 = 0.2;

/// Shape of the initial simplex (compared in Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialShape {
    /// Minimal simplex: the center plus `N` positive-offset vertices
    /// (`N+1` vertices total).
    Minimal,
    /// Symmetric simplex: `±` offsets on every axis (`2N` vertices).
    /// The paper observes this "performs much better" for discrete
    /// parameters.
    Symmetric,
}

/// Builds the initial simplex of the requested shape and relative size
/// around the center of `space`.
///
/// Offset coordinates that project back onto the center are nudged to the
/// adjacent admissible level in the offset direction (falling back to the
/// opposite side at a boundary) so the simplex spans as many axes as the
/// lattice allows.
pub fn initial_simplex(
    space: &ParamSpace,
    shape: InitialShape,
    relative_size: f64,
) -> Result<Simplex, ParamError> {
    initial_simplex_at(space, shape, relative_size, &space.center())
}

/// [`initial_simplex`] anchored at an explicit admissible center —
/// used by multi-start wrappers to spawn searches in fresh regions.
///
/// # Panics
/// Panics when `center` is not admissible.
pub fn initial_simplex_at(
    space: &ParamSpace,
    shape: InitialShape,
    relative_size: f64,
    center: &Point,
) -> Result<Simplex, ParamError> {
    assert!(
        space.is_admissible(center),
        "initial simplex center must be admissible: {center:?}"
    );
    let n = space.dims();
    let center = center.clone();
    let mut verts = Vec::with_capacity(match shape {
        InitialShape::Minimal => n + 1,
        InitialShape::Symmetric => 2 * n,
    });
    if shape == InitialShape::Minimal {
        verts.push(center.clone());
    }
    for i in 0..n {
        verts.push(offset_vertex(space, &center, i, relative_size));
        if shape == InitialShape::Symmetric {
            verts.push(offset_vertex(space, &center, i, -relative_size));
        }
    }
    Simplex::new(verts)
}

/// `Π(c + sign(r)·bᵢ·eᵢ)` with anti-collapse nudging.
fn offset_vertex(space: &ParamSpace, center: &Point, axis: usize, r: f64) -> Point {
    let p = space.param(axis);
    let b = r * p.width() / 2.0;
    let mut coords = center.as_slice().to_vec();
    coords[axis] += b;
    let raw = Point::new(coords);
    // Round *away* from the center (Nearest then fix-up) so small offsets
    // survive on coarse lattices.
    let mut proj = space.project(&raw, center, Rounding::Nearest);
    if proj[axis] == center[axis] {
        let (below, above) = p.neighbors(center[axis], 0.01);
        let nudged = if b >= 0.0 {
            above.or(below)
        } else {
            below.or(above)
        };
        if let Some(nb) = nudged {
            let mut c = proj.as_slice().to_vec();
            c[axis] = nb;
            proj = Point::new(c);
        }
    }
    proj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamDef;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::integer("a", 0, 100, 1).unwrap(),
            ParamDef::integer("b", 0, 50, 1).unwrap(),
            ParamDef::continuous("c", -1.0, 1.0).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn minimal_has_n_plus_1_vertices() {
        let s = initial_simplex(&space(), InitialShape::Minimal, 0.2).unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.spans_space(1e-9));
    }

    #[test]
    fn symmetric_has_2n_vertices() {
        let s = initial_simplex(&space(), InitialShape::Symmetric, 0.2).unwrap();
        assert_eq!(s.len(), 6);
        assert!(s.spans_space(1e-9));
    }

    #[test]
    fn all_vertices_admissible() {
        let sp = space();
        for shape in [InitialShape::Minimal, InitialShape::Symmetric] {
            for r in [0.05, 0.2, 0.5, 0.9, 1.0] {
                let s = initial_simplex(&sp, shape, r).unwrap();
                for v in s.vertices() {
                    assert!(sp.is_admissible(v), "r={r} vertex {v:?} inadmissible");
                }
            }
        }
    }

    #[test]
    fn offsets_match_paper_formula() {
        // width(a)=100, r=0.2 => b = 10; center(a)=50
        let sp = space();
        let s = initial_simplex(&sp, InitialShape::Symmetric, 0.2).unwrap();
        let c = sp.center();
        assert_eq!(s.vertex(0)[0], c[0] + 10.0);
        assert_eq!(s.vertex(1)[0], c[0] - 10.0);
        // off-axis coordinates equal the center's
        assert_eq!(s.vertex(0)[1], c[1]);
        assert_eq!(s.vertex(0)[2], c[2]);
    }

    #[test]
    fn tiny_r_on_coarse_lattice_nudges_to_neighbor() {
        // width 10 with step 5: b = 0.05*10/2 = 0.25, rounds onto center;
        // the builder must nudge to the adjacent level (5 above / below 5... center=5)
        let sp = ParamSpace::new(vec![ParamDef::integer("a", 0, 10, 5).unwrap()]).unwrap();
        let s = initial_simplex(&sp, InitialShape::Symmetric, 0.05).unwrap();
        let c = sp.center();
        assert_eq!(c[0], 5.0);
        assert_eq!(s.vertex(0)[0], 10.0);
        assert_eq!(s.vertex(1)[0], 0.0);
    }

    #[test]
    fn nudge_falls_back_across_boundary() {
        // center of [0,1] step 1 lattice rounds to 0 (tie rounds down);
        // the negative-offset vertex has no level below 0 and must fall
        // back to the level above.
        let sp = ParamSpace::new(vec![ParamDef::integer("a", 0, 1, 1).unwrap()]).unwrap();
        let s = initial_simplex(&sp, InitialShape::Symmetric, 0.1).unwrap();
        let c = sp.center();
        assert_eq!(c[0], 0.0);
        let coords: Vec<f64> = s.vertices().iter().map(|v| v[0]).collect();
        assert!(coords.contains(&1.0));
    }

    #[test]
    fn anchored_simplex_uses_given_center() {
        let sp = space();
        let center = Point::from(&[10.0, 40.0, -0.5][..]);
        let s = initial_simplex_at(&sp, InitialShape::Symmetric, 0.2, &center).unwrap();
        assert_eq!(s.vertex(0)[0], 20.0); // 10 + 0.1*100
        assert_eq!(s.vertex(1)[0], 0.0); // 10 - 10
        assert_eq!(s.vertex(2)[1], 45.0); // 40 + 0.1*50
        for v in s.vertices() {
            assert!(sp.is_admissible(v));
        }
    }

    #[test]
    #[should_panic(expected = "must be admissible")]
    fn anchored_simplex_rejects_bad_center() {
        let sp = space();
        initial_simplex_at(
            &sp,
            InitialShape::Minimal,
            0.2,
            &Point::from(&[0.5, 0.0, 0.0][..]),
        )
        .unwrap();
    }

    #[test]
    fn default_relative_size_matches_paper() {
        assert_eq!(DEFAULT_RELATIVE_SIZE, 0.2);
        // b_i = 0.1 (u - l) per §3.2.3
        let sp = space();
        let s = initial_simplex(&sp, InitialShape::Symmetric, DEFAULT_RELATIVE_SIZE).unwrap();
        let c = sp.center();
        assert_eq!((s.vertex(0)[0] - c[0]).abs(), 0.1 * 100.0);
    }
}

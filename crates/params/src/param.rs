use crate::ParamError;

/// The admissible-value structure of a single tunable parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamKind {
    /// A real-valued parameter admissible anywhere in `[lo, hi]`.
    Continuous {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// An integer-stepped parameter with admissible values
    /// `lo, lo+step, lo+2·step, …` up to `hi` (inclusive when aligned).
    Integer {
        /// Lowest admissible value.
        lo: i64,
        /// Highest candidate value (the last admissible value is the
        /// largest `lo + k·step ≤ hi`).
        hi: i64,
        /// Positive step between admissible values.
        step: i64,
    },
    /// An explicit ascending list of admissible levels (e.g. the node
    /// counts a batch scheduler will actually grant).
    Levels(
        /// Ascending, finite, non-empty admissible values.
        Vec<f64>,
    ),
}

/// A named tunable parameter: what the user hands to the tuning system
/// ("a list of the tunable parameters, and their type and range", §1).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    name: String,
    kind: ParamKind,
}

impl ParamDef {
    /// A continuous parameter on `[lo, hi]`.
    pub fn continuous(name: impl Into<String>, lo: f64, hi: f64) -> Result<Self, ParamError> {
        let name = name.into();
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(ParamError::InvalidRange {
                reason: format!("continuous range [{lo}, {hi}] is empty or non-finite"),
                name,
            });
        }
        Ok(ParamDef {
            name,
            kind: ParamKind::Continuous { lo, hi },
        })
    }

    /// An integer parameter on `{lo, lo+step, …} ∩ [lo, hi]`.
    pub fn integer(
        name: impl Into<String>,
        lo: i64,
        hi: i64,
        step: i64,
    ) -> Result<Self, ParamError> {
        let name = name.into();
        if lo > hi {
            return Err(ParamError::InvalidRange {
                reason: format!("integer range [{lo}, {hi}] is empty"),
                name,
            });
        }
        if step <= 0 {
            return Err(ParamError::InvalidRange {
                reason: format!("step {step} must be positive"),
                name,
            });
        }
        Ok(ParamDef {
            name,
            kind: ParamKind::Integer { lo, hi, step },
        })
    }

    /// A parameter restricted to an explicit ascending list of levels.
    pub fn levels(name: impl Into<String>, values: Vec<f64>) -> Result<Self, ParamError> {
        let name = name.into();
        if values.is_empty() {
            return Err(ParamError::InvalidLevels {
                reason: "level list is empty".into(),
                name,
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(ParamError::InvalidLevels {
                reason: "level list contains non-finite values".into(),
                name,
            });
        }
        if values.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ParamError::InvalidLevels {
                reason: "level list must be strictly ascending".into(),
                name,
            });
        }
        Ok(ParamDef {
            name,
            kind: ParamKind::Levels(values),
        })
    }

    /// Parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Admissible-value structure.
    pub fn kind(&self) -> &ParamKind {
        &self.kind
    }

    /// Lowest admissible value `l(i)`.
    pub fn lower(&self) -> f64 {
        match &self.kind {
            ParamKind::Continuous { lo, .. } => *lo,
            ParamKind::Integer { lo, .. } => *lo as f64,
            ParamKind::Levels(v) => v[0],
        }
    }

    /// Highest admissible value `u(i)`.
    pub fn upper(&self) -> f64 {
        match &self.kind {
            ParamKind::Continuous { hi, .. } => *hi,
            ParamKind::Integer { lo, hi, step } => {
                let k = (hi - lo) / step;
                (lo + k * step) as f64
            }
            ParamKind::Levels(v) => *v.last().expect("levels non-empty"),
        }
    }

    /// Range width `u(i) − l(i)` used to scale initial simplex offsets
    /// (`bᵢ = r·(u(i) − l(i))/2`, §3.2.3 / §6.1).
    pub fn width(&self) -> f64 {
        self.upper() - self.lower()
    }

    /// True when the parameter is continuous (no discreteness constraint).
    pub fn is_continuous(&self) -> bool {
        matches!(self.kind, ParamKind::Continuous { .. })
    }

    /// Number of admissible values, or `None` for a continuous parameter.
    pub fn cardinality(&self) -> Option<usize> {
        match &self.kind {
            ParamKind::Continuous { .. } => None,
            ParamKind::Integer { lo, hi, step } => Some(((hi - lo) / step + 1) as usize),
            ParamKind::Levels(v) => Some(v.len()),
        }
    }

    /// The `idx`-th admissible value of a discrete parameter (ascending).
    ///
    /// # Panics
    /// Panics if the parameter is continuous or `idx` is out of range.
    pub fn level(&self, idx: usize) -> f64 {
        match &self.kind {
            ParamKind::Continuous { .. } => panic!("level() on continuous parameter"),
            ParamKind::Integer { lo, step, .. } => {
                let card = self.cardinality().expect("integer is discrete");
                assert!(idx < card, "level index {idx} out of range {card}");
                (lo + idx as i64 * step) as f64
            }
            ParamKind::Levels(v) => v[idx],
        }
    }

    /// True when `x` is an admissible value for this parameter.
    pub fn is_admissible(&self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        match &self.kind {
            ParamKind::Continuous { lo, hi } => (*lo..=*hi).contains(&x),
            ParamKind::Integer { lo, hi, step } => {
                if x < *lo as f64 || x > *hi as f64 || x.fract() != 0.0 {
                    return false;
                }
                let xi = x as i64;
                (xi - lo) % step == 0
            }
            ParamKind::Levels(v) => v.contains(&x),
        }
    }

    /// Clamps `x` to `[l(i), u(i)]` (boundary constraints of §3.2.1).
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lower(), self.upper())
    }

    /// The bracketing admissible values `(l, u)` with `l ≤ x ≤ u` for a
    /// clamped coordinate; `l == u` iff `x` is itself admissible (or the
    /// parameter is continuous).
    pub fn bracket(&self, x: f64) -> (f64, f64) {
        let x = self.clamp(x);
        match &self.kind {
            ParamKind::Continuous { .. } => (x, x),
            ParamKind::Integer { lo, step, .. } => {
                let k = ((x - *lo as f64) / *step as f64).floor() as i64;
                let l = (*lo + k * step) as f64;
                if l == x {
                    (x, x)
                } else {
                    (l, (*lo + (k + 1) * step) as f64)
                }
            }
            ParamKind::Levels(v) => {
                // partition_point: count of levels <= x
                let n_le = v.partition_point(|&l| l <= x);
                if n_le > 0 && v[n_le - 1] == x {
                    (x, x)
                } else if n_le == 0 {
                    (v[0], v[0])
                } else if n_le == v.len() {
                    let last = v[v.len() - 1];
                    (last, last)
                } else {
                    (v[n_le - 1], v[n_le])
                }
            }
        }
    }

    /// Projects `x` onto an admissible value, rounding discrete values
    /// toward `center` — the paper's `Π(·)` per-coordinate rule (§3.2.1):
    /// round to the bracketing value on the same side as the
    /// transformation center, so repeated shrinks collapse onto the
    /// center exactly.
    pub fn project_toward(&self, x: f64, center: f64) -> f64 {
        let x = self.clamp(x);
        let (l, u) = self.bracket(x);
        if l == u {
            return l;
        }
        if center < x {
            l
        } else if center > x {
            u
        } else {
            // Center coincides with the inadmissible coordinate (cannot
            // happen when the center is itself admissible); fall back to
            // nearest rounding.
            if x - l <= u - x {
                l
            } else {
                u
            }
        }
    }

    /// Projects `x` onto the nearest admissible value (plain rounding;
    /// used as an ablation alternative to [`ParamDef::project_toward`]).
    pub fn project_nearest(&self, x: f64) -> f64 {
        let x = self.clamp(x);
        let (l, u) = self.bracket(x);
        if l == u {
            return l;
        }
        if x - l <= u - x {
            l
        } else {
            u
        }
    }

    /// The admissible neighbours `(below, above)` of an admissible value,
    /// as used by the stopping-criterion probe simplex (§3.2.2):
    /// `None` on the respective side when `x` sits on a boundary. For a
    /// continuous parameter the neighbours are `x ∓ eps·width`.
    pub fn neighbors(&self, x: f64, eps: f64) -> (Option<f64>, Option<f64>) {
        match &self.kind {
            ParamKind::Continuous { lo, hi } => {
                let h = eps * self.width();
                let below = if x - h >= *lo { Some(x - h) } else { None };
                let above = if x + h <= *hi { Some(x + h) } else { None };
                (below, above)
            }
            ParamKind::Integer { lo, step, .. } => {
                let upper = self.upper();
                let below = if x - *step as f64 >= *lo as f64 {
                    Some(x - *step as f64)
                } else {
                    None
                };
                let above = if x + *step as f64 <= upper {
                    Some(x + *step as f64)
                } else {
                    None
                };
                (below, above)
            }
            ParamKind::Levels(v) => {
                let i = v.iter().position(|&l| l == x);
                match i {
                    Some(i) => (
                        if i > 0 { Some(v[i - 1]) } else { None },
                        if i + 1 < v.len() {
                            Some(v[i + 1])
                        } else {
                            None
                        },
                    ),
                    None => (None, None),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(ParamDef::continuous("x", 0.0, 1.0).is_ok());
        assert!(ParamDef::continuous("x", 1.0, 0.0).is_err());
        assert!(ParamDef::continuous("x", 0.0, f64::NAN).is_err());
        assert!(ParamDef::integer("n", 1, 10, 2).is_ok());
        assert!(ParamDef::integer("n", 10, 1, 1).is_err());
        assert!(ParamDef::integer("n", 1, 10, 0).is_err());
        assert!(ParamDef::levels("l", vec![1.0, 2.0, 4.0]).is_ok());
        assert!(ParamDef::levels("l", vec![]).is_err());
        assert!(ParamDef::levels("l", vec![2.0, 1.0]).is_err());
        assert!(ParamDef::levels("l", vec![1.0, 1.0]).is_err());
        assert!(ParamDef::levels("l", vec![1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn integer_upper_respects_step_alignment() {
        // admissible: 2, 5, 8 (11 > 10)
        let p = ParamDef::integer("n", 2, 10, 3).unwrap();
        assert_eq!(p.lower(), 2.0);
        assert_eq!(p.upper(), 8.0);
        assert_eq!(p.cardinality(), Some(3));
        assert_eq!(p.level(0), 2.0);
        assert_eq!(p.level(2), 8.0);
    }

    #[test]
    fn admissibility() {
        let c = ParamDef::continuous("c", 0.0, 1.0).unwrap();
        assert!(c.is_admissible(0.5));
        assert!(c.is_admissible(0.0));
        assert!(!c.is_admissible(1.5));
        assert!(!c.is_admissible(f64::NAN));

        let i = ParamDef::integer("i", 2, 10, 3).unwrap();
        assert!(i.is_admissible(2.0));
        assert!(i.is_admissible(5.0));
        assert!(i.is_admissible(8.0));
        assert!(!i.is_admissible(3.0));
        assert!(!i.is_admissible(11.0));
        assert!(!i.is_admissible(4.5));

        let l = ParamDef::levels("l", vec![1.0, 2.0, 4.0]).unwrap();
        assert!(l.is_admissible(2.0));
        assert!(!l.is_admissible(3.0));
    }

    #[test]
    fn bracket_integer() {
        let i = ParamDef::integer("i", 0, 10, 2).unwrap();
        assert_eq!(i.bracket(3.0), (2.0, 4.0));
        assert_eq!(i.bracket(4.0), (4.0, 4.0));
        assert_eq!(i.bracket(-5.0), (0.0, 0.0)); // clamped to boundary
        assert_eq!(i.bracket(99.0), (10.0, 10.0));
        assert_eq!(i.bracket(0.1), (0.0, 2.0));
        assert_eq!(i.bracket(9.9), (8.0, 10.0));
    }

    #[test]
    fn bracket_levels() {
        let l = ParamDef::levels("l", vec![1.0, 2.0, 4.0]).unwrap();
        assert_eq!(l.bracket(3.0), (2.0, 4.0));
        assert_eq!(l.bracket(2.0), (2.0, 2.0));
        assert_eq!(l.bracket(0.0), (1.0, 1.0));
        assert_eq!(l.bracket(9.0), (4.0, 4.0));
        assert_eq!(l.bracket(1.5), (1.0, 2.0));
    }

    #[test]
    fn projection_rounds_toward_center() {
        let i = ParamDef::integer("i", 0, 10, 2).unwrap();
        // x = 5 (inadmissible), center below x -> round down to 4
        assert_eq!(i.project_toward(5.0, 2.0), 4.0);
        // center above x -> round up to 6
        assert_eq!(i.project_toward(5.0, 8.0), 6.0);
        // admissible values pass through unchanged
        assert_eq!(i.project_toward(6.0, 0.0), 6.0);
        // out-of-bounds clamps first
        assert_eq!(i.project_toward(-3.0, 10.0), 0.0);
        assert_eq!(i.project_toward(15.0, 0.0), 10.0);
    }

    #[test]
    fn projection_nearest() {
        let i = ParamDef::integer("i", 0, 10, 4); // 0,4,8
        let i = i.unwrap();
        assert_eq!(i.project_nearest(1.0), 0.0);
        assert_eq!(i.project_nearest(3.0), 4.0);
        assert_eq!(i.project_nearest(2.0), 0.0); // ties round down
        assert_eq!(i.project_nearest(7.9), 8.0);
    }

    #[test]
    fn continuous_projection_is_clamp_only() {
        let c = ParamDef::continuous("c", 0.0, 1.0).unwrap();
        assert_eq!(c.project_toward(0.25, 0.9), 0.25);
        assert_eq!(c.project_toward(-2.0, 0.5), 0.0);
        assert_eq!(c.project_toward(7.0, 0.5), 1.0);
    }

    #[test]
    fn shrink_converges_to_center_under_projection() {
        // §3.2.1: "after a finite number of consecutive shrinking
        // transformations, all discrete parameters become equal to the
        // center". Simulate repeated x <- Π(0.5(x + c)).
        let i = ParamDef::integer("i", 0, 100, 1).unwrap();
        let c = 37.0;
        let mut x = 93.0;
        for _ in 0..64 {
            if x == c {
                break;
            }
            x = i.project_toward(0.5 * (x + c), c);
        }
        assert_eq!(x, c);
    }

    #[test]
    fn neighbors_integer() {
        let i = ParamDef::integer("i", 0, 10, 2).unwrap();
        assert_eq!(i.neighbors(4.0, 0.0), (Some(2.0), Some(6.0)));
        assert_eq!(i.neighbors(0.0, 0.0), (None, Some(2.0)));
        assert_eq!(i.neighbors(10.0, 0.0), (Some(8.0), None));
    }

    #[test]
    fn neighbors_levels_and_continuous() {
        let l = ParamDef::levels("l", vec![1.0, 2.0, 4.0]).unwrap();
        assert_eq!(l.neighbors(2.0, 0.0), (Some(1.0), Some(4.0)));
        assert_eq!(l.neighbors(1.0, 0.0), (None, Some(2.0)));
        assert_eq!(l.neighbors(3.0, 0.0), (None, None)); // not admissible

        let c = ParamDef::continuous("c", 0.0, 10.0).unwrap();
        let (b, a) = c.neighbors(5.0, 0.01);
        assert_eq!(b, Some(5.0 - 0.1));
        assert_eq!(a, Some(5.0 + 0.1));
        let (b, _) = c.neighbors(0.0, 0.01);
        assert_eq!(b, None);
    }

    #[test]
    fn width() {
        let i = ParamDef::integer("i", 2, 10, 3).unwrap(); // 2..8
        assert_eq!(i.width(), 6.0);
    }
}

use std::fmt;
use std::ops::Index;

/// A point in `R^N`.
///
/// Direct-search transforms are affine combinations of simplex vertices;
/// [`Point::affine`] and the named helpers ([`Point::reflect_through`],
/// [`Point::expand_through`], [`Point::shrink_toward`]) implement exactly
/// the combinations used by the rank-ordering algorithms of the paper:
///
/// * reflection: `2·v⁰ − vʲ`
/// * expansion:  `3·v⁰ − 2·vʲ`
/// * shrink:     `½·v⁰ + ½·vʲ`
///
/// (Algorithm 1 lines 9/11/13; the same formulas are used per-vertex by
/// the parallel variant, Algorithm 2.)
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from raw coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        Point { coords }
    }

    /// The origin of `R^n`.
    pub fn zeros(n: usize) -> Self {
        Point {
            coords: vec![0.0; n],
        }
    }

    /// Number of coordinates.
    pub fn dims(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.coords
    }

    /// Mutable coordinates.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.coords
    }

    /// Consumes the point, returning its coordinate vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.coords
    }

    /// Iterator over coordinates.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.coords.iter().copied()
    }

    /// General affine combination `Σ wᵢ·pᵢ` of points of equal dimension.
    ///
    /// # Panics
    /// Panics if `terms` is empty or dimensions differ; transform inputs
    /// always come from one simplex, so a mismatch is a programming error.
    pub fn affine(terms: &[(f64, &Point)]) -> Point {
        let n = terms
            .first()
            .expect("affine combination of zero points")
            .1
            .dims();
        let mut out = vec![0.0; n];
        for (w, p) in terms {
            assert_eq!(p.dims(), n, "affine combination dimension mismatch");
            for (o, c) in out.iter_mut().zip(p.iter()) {
                *o += w * c;
            }
        }
        Point::new(out)
    }

    /// Reflection of `self` through `center`: `2·center − self`.
    pub fn reflect_through(&self, center: &Point) -> Point {
        Point::affine(&[(2.0, center), (-1.0, self)])
    }

    /// Expansion of `self` through `center`: `3·center − 2·self`
    /// (the reflected point pushed twice as far from the center).
    pub fn expand_through(&self, center: &Point) -> Point {
        Point::affine(&[(3.0, center), (-2.0, self)])
    }

    /// Shrink of `self` toward `center`: the midpoint `½(center + self)`.
    pub fn shrink_toward(&self, center: &Point) -> Point {
        Point::affine(&[(0.5, center), (0.5, self)])
    }

    /// Euclidean distance to another point.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn distance(&self, other: &Point) -> f64 {
        assert_eq!(self.dims(), other.dims(), "distance dimension mismatch");
        self.iter()
            .zip(other.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Chebyshev (max-coordinate) distance to another point.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn chebyshev(&self, other: &Point) -> f64 {
        assert_eq!(self.dims(), other.dims(), "chebyshev dimension mismatch");
        self.iter()
            .zip(other.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True when every coordinate differs by at most `tol`.
    pub fn approx_eq(&self, other: &Point, tol: f64) -> bool {
        self.dims() == other.dims() && self.chebyshev(other) <= tol
    }

    /// True when any coordinate is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.iter().any(|c| !c.is_finite())
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Point::new(coords.to_vec())
    }
}

impl Index<usize> for Point {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

/// `Display` prints coordinates comma-separated in parentheses,
/// e.g. `(1, 2.5)`.
impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::from(c)
    }

    #[test]
    fn reflection_matches_paper_formula() {
        let v0 = p(&[1.0, 1.0]);
        let vj = p(&[3.0, 0.0]);
        // 2*v0 - vj = (-1, 2)
        assert_eq!(vj.reflect_through(&v0), p(&[-1.0, 2.0]));
    }

    #[test]
    fn expansion_matches_paper_formula() {
        let v0 = p(&[1.0, 1.0]);
        let vj = p(&[3.0, 0.0]);
        // 3*v0 - 2*vj = (-3, 3)
        assert_eq!(vj.expand_through(&v0), p(&[-3.0, 3.0]));
    }

    #[test]
    fn shrink_is_midpoint() {
        let v0 = p(&[1.0, 1.0]);
        let vj = p(&[3.0, 0.0]);
        assert_eq!(vj.shrink_toward(&v0), p(&[2.0, 0.5]));
    }

    #[test]
    fn expansion_is_reflection_applied_to_reflection_midstep() {
        // e = 3v0 - 2vj is the reflection r = 2v0 - vj moved one more
        // (v0 - vj) step: e = r + (v0 - vj).
        let v0 = p(&[0.5, -2.0, 7.0]);
        let vj = p(&[1.5, 4.0, -1.0]);
        let r = vj.reflect_through(&v0);
        let e = vj.expand_through(&v0);
        let step = Point::affine(&[(1.0, &v0), (-1.0, &vj)]);
        let expected = Point::affine(&[(1.0, &r), (1.0, &step)]);
        assert!(e.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn reflecting_center_is_identity() {
        let v0 = p(&[2.0, -3.0]);
        assert_eq!(v0.reflect_through(&v0), v0);
        assert_eq!(v0.expand_through(&v0), v0);
        assert_eq!(v0.shrink_toward(&v0), v0);
    }

    #[test]
    fn distances() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[3.0, 4.0]);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.chebyshev(&b), 4.0);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = p(&[1.0, 2.0]);
        let b = p(&[1.0 + 1e-9, 2.0 - 1e-9]);
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
        // dimension mismatch is never approximately equal
        assert!(!a.approx_eq(&p(&[1.0]), 1.0));
    }

    #[test]
    fn non_finite_detection() {
        assert!(!p(&[1.0, 2.0]).has_non_finite());
        assert!(p(&[1.0, f64::NAN]).has_non_finite());
        assert!(p(&[f64::INFINITY]).has_non_finite());
    }

    #[test]
    fn display_and_debug() {
        let a = p(&[1.0, 2.5]);
        assert_eq!(format!("{a}"), "(1, 2.5)");
        assert_eq!(format!("{a:?}"), "Point[1.0, 2.5]");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn affine_rejects_mixed_dims() {
        let _ = Point::affine(&[(1.0, &p(&[1.0])), (1.0, &p(&[1.0, 2.0]))]);
    }
}

use std::fmt;
use std::ops::Index;

/// A point in `R^N`.
///
/// Direct-search transforms are affine combinations of simplex vertices;
/// [`Point::affine`] and the named helpers ([`Point::reflect_through`],
/// [`Point::expand_through`], [`Point::shrink_toward`]) implement exactly
/// the combinations used by the rank-ordering algorithms of the paper:
///
/// * reflection: `2·v⁰ − vʲ`
/// * expansion:  `3·v⁰ − 2·vʲ`
/// * shrink:     `½·v⁰ + ½·vʲ`
///
/// (Algorithm 1 lines 9/11/13; the same formulas are used per-vertex by
/// the parallel variant, Algorithm 2.)
///
/// Points of up to [`Point::INLINE_CAP`] dimensions are stored inline on
/// the stack — tuning spaces are low-dimensional (GS2 has 3 parameters),
/// so simplex transforms, projections, and candidate generation run
/// without touching the heap. Higher-dimensional points transparently
/// fall back to heap storage.
#[derive(Clone)]
pub struct Point {
    storage: Storage,
}

#[derive(Clone)]
enum Storage {
    /// `len` live coordinates at the front of a fixed buffer.
    Inline {
        buf: [f64; Point::INLINE_CAP],
        len: u8,
    },
    Heap(Vec<f64>),
}

impl Point {
    /// Largest dimension stored inline (no heap allocation).
    pub const INLINE_CAP: usize = 8;

    /// Creates a point from raw coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        if coords.len() <= Self::INLINE_CAP {
            Self::from_slice(&coords)
        } else {
            Point {
                storage: Storage::Heap(coords),
            }
        }
    }

    /// Creates a point by copying a coordinate slice (allocation-free
    /// for dimensions up to [`Point::INLINE_CAP`]).
    pub fn from_slice(coords: &[f64]) -> Self {
        if coords.len() <= Self::INLINE_CAP {
            let mut buf = [0.0; Self::INLINE_CAP];
            buf[..coords.len()].copy_from_slice(coords);
            Point {
                storage: Storage::Inline {
                    buf,
                    len: coords.len() as u8,
                },
            }
        } else {
            Point {
                storage: Storage::Heap(coords.to_vec()),
            }
        }
    }

    /// The origin of `R^n`.
    pub fn zeros(n: usize) -> Self {
        if n <= Self::INLINE_CAP {
            Point {
                storage: Storage::Inline {
                    buf: [0.0; Self::INLINE_CAP],
                    len: n as u8,
                },
            }
        } else {
            Point {
                storage: Storage::Heap(vec![0.0; n]),
            }
        }
    }

    /// Number of coordinates.
    pub fn dims(&self) -> usize {
        match &self.storage {
            Storage::Inline { len, .. } => usize::from(*len),
            Storage::Heap(v) => v.len(),
        }
    }

    /// Coordinates as a slice.
    pub fn as_slice(&self) -> &[f64] {
        match &self.storage {
            Storage::Inline { buf, len } => &buf[..usize::from(*len)],
            Storage::Heap(v) => v,
        }
    }

    /// Mutable coordinates.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        match &mut self.storage {
            Storage::Inline { buf, len } => &mut buf[..usize::from(*len)],
            Storage::Heap(v) => v,
        }
    }

    /// Consumes the point, returning its coordinate vector.
    pub fn into_vec(self) -> Vec<f64> {
        match self.storage {
            Storage::Inline { buf, len } => buf[..usize::from(len)].to_vec(),
            Storage::Heap(v) => v,
        }
    }

    /// Iterator over coordinates.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.as_slice().iter().copied()
    }

    /// General affine combination `Σ wᵢ·pᵢ` of points of equal dimension.
    ///
    /// # Panics
    /// Panics if `terms` is empty or dimensions differ; transform inputs
    /// always come from one simplex, so a mismatch is a programming error.
    pub fn affine(terms: &[(f64, &Point)]) -> Point {
        let n = terms
            .first()
            .expect("affine combination of zero points")
            .1
            .dims();
        let mut out = Point::zeros(n);
        let acc = out.as_mut_slice();
        for (w, p) in terms {
            assert_eq!(p.dims(), n, "affine combination dimension mismatch");
            for (o, c) in acc.iter_mut().zip(p.iter()) {
                *o += w * c;
            }
        }
        out
    }

    /// Reflection of `self` through `center`: `2·center − self`.
    pub fn reflect_through(&self, center: &Point) -> Point {
        Point::affine(&[(2.0, center), (-1.0, self)])
    }

    /// Expansion of `self` through `center`: `3·center − 2·self`
    /// (the reflected point pushed twice as far from the center).
    pub fn expand_through(&self, center: &Point) -> Point {
        Point::affine(&[(3.0, center), (-2.0, self)])
    }

    /// Shrink of `self` toward `center`: the midpoint `½(center + self)`.
    pub fn shrink_toward(&self, center: &Point) -> Point {
        Point::affine(&[(0.5, center), (0.5, self)])
    }

    /// Euclidean distance to another point.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn distance(&self, other: &Point) -> f64 {
        assert_eq!(self.dims(), other.dims(), "distance dimension mismatch");
        self.iter()
            .zip(other.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Chebyshev (max-coordinate) distance to another point.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn chebyshev(&self, other: &Point) -> f64 {
        assert_eq!(self.dims(), other.dims(), "chebyshev dimension mismatch");
        self.iter()
            .zip(other.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True when every coordinate differs by at most `tol`.
    pub fn approx_eq(&self, other: &Point, tol: f64) -> bool {
        self.dims() == other.dims() && self.chebyshev(other) <= tol
    }

    /// True when any coordinate is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.iter().any(|c| !c.is_finite())
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Point::from_slice(coords)
    }
}

impl PartialEq for Point {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Index<usize> for Point {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.as_slice()[i]
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.as_slice())
    }
}

/// `Display` prints coordinates comma-separated in parentheses,
/// e.g. `(1, 2.5)`.
impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::from(c)
    }

    #[test]
    fn reflection_matches_paper_formula() {
        let v0 = p(&[1.0, 1.0]);
        let vj = p(&[3.0, 0.0]);
        // 2*v0 - vj = (-1, 2)
        assert_eq!(vj.reflect_through(&v0), p(&[-1.0, 2.0]));
    }

    #[test]
    fn expansion_matches_paper_formula() {
        let v0 = p(&[1.0, 1.0]);
        let vj = p(&[3.0, 0.0]);
        // 3*v0 - 2*vj = (-3, 3)
        assert_eq!(vj.expand_through(&v0), p(&[-3.0, 3.0]));
    }

    #[test]
    fn shrink_is_midpoint() {
        let v0 = p(&[1.0, 1.0]);
        let vj = p(&[3.0, 0.0]);
        assert_eq!(vj.shrink_toward(&v0), p(&[2.0, 0.5]));
    }

    #[test]
    fn expansion_is_reflection_applied_to_reflection_midstep() {
        // e = 3v0 - 2vj is the reflection r = 2v0 - vj moved one more
        // (v0 - vj) step: e = r + (v0 - vj).
        let v0 = p(&[0.5, -2.0, 7.0]);
        let vj = p(&[1.5, 4.0, -1.0]);
        let r = vj.reflect_through(&v0);
        let e = vj.expand_through(&v0);
        let step = Point::affine(&[(1.0, &v0), (-1.0, &vj)]);
        let expected = Point::affine(&[(1.0, &r), (1.0, &step)]);
        assert!(e.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn reflecting_center_is_identity() {
        let v0 = p(&[2.0, -3.0]);
        assert_eq!(v0.reflect_through(&v0), v0);
        assert_eq!(v0.expand_through(&v0), v0);
        assert_eq!(v0.shrink_toward(&v0), v0);
    }

    #[test]
    fn distances() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[3.0, 4.0]);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.chebyshev(&b), 4.0);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = p(&[1.0, 2.0]);
        let b = p(&[1.0 + 1e-9, 2.0 - 1e-9]);
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
        // dimension mismatch is never approximately equal
        assert!(!a.approx_eq(&p(&[1.0]), 1.0));
    }

    #[test]
    fn non_finite_detection() {
        assert!(!p(&[1.0, 2.0]).has_non_finite());
        assert!(p(&[1.0, f64::NAN]).has_non_finite());
        assert!(p(&[f64::INFINITY]).has_non_finite());
    }

    #[test]
    fn display_and_debug() {
        let a = p(&[1.0, 2.5]);
        assert_eq!(format!("{a}"), "(1, 2.5)");
        assert_eq!(format!("{a:?}"), "Point[1.0, 2.5]");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn affine_rejects_mixed_dims() {
        let _ = Point::affine(&[(1.0, &p(&[1.0])), (1.0, &p(&[1.0, 2.0]))]);
    }

    #[test]
    fn inline_and_heap_storage_agree() {
        // below, at, and above the inline capacity
        for n in [0, 1, Point::INLINE_CAP, Point::INLINE_CAP + 1, 20] {
            let coords: Vec<f64> = (0..n).map(|i| i as f64 * 1.5 - 3.0).collect();
            let a = Point::new(coords.clone());
            let b = Point::from_slice(&coords);
            assert_eq!(a, b);
            assert_eq!(a.dims(), n);
            assert_eq!(a.as_slice(), &coords[..]);
            assert_eq!(a.clone().into_vec(), coords);
            let mut z = Point::zeros(n);
            z.as_mut_slice().copy_from_slice(&coords);
            assert_eq!(z, a);
        }
    }

    #[test]
    fn transforms_cross_inline_boundary() {
        let n = Point::INLINE_CAP + 2;
        let v0 = Point::new((0..n).map(|i| i as f64).collect());
        let vj = Point::new((0..n).map(|i| (i as f64) * 2.0).collect());
        let r = vj.reflect_through(&v0);
        for i in 0..n {
            assert_eq!(r[i], 2.0 * (i as f64) - 2.0 * (i as f64));
        }
    }
}

use crate::{ParamDef, ParamError, Point};

/// How the projection operator rounds inadmissible discrete coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounding {
    /// The paper's rule (§3.2.1): round to the bracketing admissible value
    /// on the side of the transformation center, guaranteeing that
    /// repeated shrinks collapse exactly onto the center.
    TowardCenter,
    /// Plain nearest rounding (ablation alternative; loses the shrink
    /// convergence guarantee on discrete lattices).
    Nearest,
}

/// The admissible region of a tuning problem: an ordered list of
/// [`ParamDef`]s defining a box (with per-coordinate discreteness
/// constraints) in `R^N`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    params: Vec<ParamDef>,
}

impl ParamSpace {
    /// Creates a space from parameter definitions.
    pub fn new(params: Vec<ParamDef>) -> Result<Self, ParamError> {
        if params.is_empty() {
            return Err(ParamError::EmptySpace);
        }
        Ok(ParamSpace { params })
    }

    /// Number of tunable parameters `N`.
    pub fn dims(&self) -> usize {
        self.params.len()
    }

    /// The parameter definitions, in coordinate order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// The `i`-th parameter definition.
    pub fn param(&self, i: usize) -> &ParamDef {
        &self.params[i]
    }

    /// Parameter names in coordinate order.
    pub fn names(&self) -> Vec<&str> {
        self.params.iter().map(|p| p.name()).collect()
    }

    /// Coordinate index of the parameter called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name() == name)
    }

    /// The named coordinate of a point.
    ///
    /// # Panics
    /// Panics when the name is unknown or the point has the wrong
    /// dimensionality.
    pub fn value_of(&self, point: &Point, name: &str) -> f64 {
        assert_eq!(point.dims(), self.dims(), "value_of: dimension mismatch");
        let i = self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown parameter `{name}`"));
        point[i]
    }

    /// Builds an admissible point from `name = value` pairs (every
    /// parameter exactly once, order-free).
    ///
    /// # Errors
    /// Returns [`ParamError`] on unknown/duplicate/missing names or an
    /// inadmissible value.
    pub fn point_from_pairs(&self, pairs: &[(&str, f64)]) -> Result<Point, ParamError> {
        let mut coords = vec![f64::NAN; self.dims()];
        for &(name, value) in pairs {
            let i = self
                .index_of(name)
                .ok_or_else(|| ParamError::InvalidRange {
                    name: name.to_string(),
                    reason: "unknown parameter".into(),
                })?;
            if !coords[i].is_nan() {
                return Err(ParamError::InvalidRange {
                    name: name.to_string(),
                    reason: "parameter given twice".into(),
                });
            }
            if !self.params[i].is_admissible(value) {
                return Err(ParamError::InvalidRange {
                    name: name.to_string(),
                    reason: format!("value {value} is not admissible"),
                });
            }
            coords[i] = value;
        }
        if let Some(i) = coords.iter().position(|c| c.is_nan()) {
            return Err(ParamError::InvalidRange {
                name: self.params[i].name().to_string(),
                reason: "parameter missing from pair list".into(),
            });
        }
        Ok(Point::new(coords))
    }

    /// Formats a point with parameter names: `ntheta=64, nodes=8`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn describe(&self, point: &Point) -> String {
        assert_eq!(point.dims(), self.dims(), "describe: dimension mismatch");
        self.params
            .iter()
            .zip(point.iter())
            .map(|(p, v)| format!("{}={v}", p.name()))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Validates that `x` has the right dimensionality.
    pub fn check_dims(&self, x: &Point) -> Result<(), ParamError> {
        if x.dims() != self.dims() {
            Err(ParamError::DimensionMismatch {
                expected: self.dims(),
                actual: x.dims(),
            })
        } else {
            Ok(())
        }
    }

    /// The center `c` of the admissible region: the midpoint of each
    /// parameter's range, rounded to the nearest admissible value. Used
    /// as the anchor of the initial simplex (§3.2.3).
    pub fn center(&self) -> Point {
        Point::new(
            self.params
                .iter()
                .map(|p| p.project_nearest(0.5 * (p.lower() + p.upper())))
                .collect(),
        )
    }

    /// True when every coordinate of `x` is admissible.
    pub fn is_admissible(&self, x: &Point) -> bool {
        x.dims() == self.dims()
            && self
                .params
                .iter()
                .zip(x.iter())
                .all(|(p, c)| p.is_admissible(c))
    }

    /// The projection operator `Π(·)` of §3.2.1: clamps to bounds and
    /// rounds each discrete coordinate according to `rounding`, using
    /// `center` (the transformation center `v⁰`) as the rounding anchor.
    ///
    /// # Panics
    /// Panics on dimension mismatch; transform outputs always share the
    /// space's dimensionality, so a mismatch is a programming error.
    pub fn project(&self, x: &Point, center: &Point, rounding: Rounding) -> Point {
        assert_eq!(x.dims(), self.dims(), "project: point dimension mismatch");
        assert_eq!(
            center.dims(),
            self.dims(),
            "project: center dimension mismatch"
        );
        Point::new(
            self.params
                .iter()
                .zip(x.iter().zip(center.iter()))
                .map(|(p, (xi, ci))| match rounding {
                    Rounding::TowardCenter => p.project_toward(xi, ci),
                    Rounding::Nearest => p.project_nearest(xi),
                })
                .collect(),
        )
    }

    /// Clamps every coordinate into its `[l(i), u(i)]` box without any
    /// discreteness rounding.
    pub fn clamp(&self, x: &Point) -> Point {
        Point::new(
            self.params
                .iter()
                .zip(x.iter())
                .map(|(p, c)| p.clamp(c))
                .collect(),
        )
    }

    /// Maps unit-interval coordinates to an admissible point: continuous
    /// coordinates are linearly interpolated, discrete coordinates pick
    /// the `⌊u·card⌋`-th level. This is the crate's randomness injection
    /// point — callers supply `u ∈ [0,1)^N` from their own RNG.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn point_from_unit(&self, unit: &[f64]) -> Point {
        assert_eq!(
            unit.len(),
            self.dims(),
            "point_from_unit: dimension mismatch"
        );
        Point::new(
            self.params
                .iter()
                .zip(unit.iter())
                .map(|(p, &u)| {
                    let u = u.clamp(0.0, 1.0 - f64::EPSILON);
                    match p.cardinality() {
                        None => p.lower() + u * p.width(),
                        Some(card) => p.level((u * card as f64) as usize),
                    }
                })
                .collect(),
        )
    }

    /// Total number of admissible lattice points, or `None` if any
    /// parameter is continuous.
    pub fn lattice_size(&self) -> Option<usize> {
        self.params
            .iter()
            .map(|p| p.cardinality())
            .try_fold(1usize, |acc, c| c.map(|c| acc.saturating_mul(c)))
    }

    /// Iterates over every admissible lattice point (row-major, first
    /// parameter slowest), for fully discrete spaces.
    ///
    /// Returns an empty iterator if any parameter is continuous.
    pub fn lattice(&self) -> LatticeIter<'_> {
        let discrete = self.params.iter().all(|p| p.cardinality().is_some());
        LatticeIter {
            space: self,
            idx: vec![0; self.dims()],
            done: !discrete,
        }
    }

    /// The stopping-criterion probe points of §3.2.2: up to `2N` points
    /// `{v⁰ + uᵢ·eᵢ, v⁰ − lᵢ·eᵢ}` where the offsets step to the discrete
    /// neighbours of `v⁰(i)` (or `eps·width` for continuous parameters).
    /// Probes falling outside the boundary are omitted ("if v⁰(i) is a
    /// lower (upper) boundary value, then lᵢ (uᵢ) is zero").
    pub fn probe_points(&self, v0: &Point, eps: f64) -> Vec<Point> {
        assert_eq!(v0.dims(), self.dims(), "probe_points: dimension mismatch");
        let mut probes = Vec::with_capacity(2 * self.dims());
        for (i, p) in self.params.iter().enumerate() {
            let (below, above) = p.neighbors(v0[i], eps);
            for nb in [below, above].into_iter().flatten() {
                let mut coords = v0.as_slice().to_vec();
                coords[i] = nb;
                probes.push(Point::new(coords));
            }
        }
        probes
    }
}

/// Row-major iterator over all admissible points of a fully discrete
/// [`ParamSpace`]. See [`ParamSpace::lattice`].
#[derive(Debug)]
pub struct LatticeIter<'a> {
    space: &'a ParamSpace,
    idx: Vec<usize>,
    done: bool,
}

impl Iterator for LatticeIter<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.done {
            return None;
        }
        let point = Point::new(
            self.space
                .params
                .iter()
                .zip(self.idx.iter())
                .map(|(p, &i)| p.level(i))
                .collect(),
        );
        // advance odometer, last coordinate fastest
        let mut pos = self.space.dims();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            let card = self.space.params[pos]
                .cardinality()
                .expect("lattice iteration requires discrete params");
            self.idx[pos] += 1;
            if self.idx[pos] < card {
                break;
            }
            self.idx[pos] = 0;
        }
        Some(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_2d() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::integer("a", 0, 10, 2).unwrap(),
            ParamDef::continuous("b", -1.0, 1.0).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn empty_space_rejected() {
        assert_eq!(ParamSpace::new(vec![]).unwrap_err(), ParamError::EmptySpace);
    }

    #[test]
    fn center_is_admissible_midpoint() {
        let s = space_2d();
        let c = s.center();
        assert!(s.is_admissible(&c));
        assert_eq!(c[0], 4.0); // midpoint 5 rounds down (tie) to 4
        assert_eq!(c[1], 0.0);
    }

    #[test]
    fn admissibility_checks_dims_and_coords() {
        let s = space_2d();
        assert!(s.is_admissible(&Point::from(&[2.0, 0.5][..])));
        assert!(!s.is_admissible(&Point::from(&[3.0, 0.5][..])));
        assert!(!s.is_admissible(&Point::from(&[2.0, 2.0][..])));
        assert!(!s.is_admissible(&Point::from(&[2.0][..])));
    }

    #[test]
    fn projection_maps_into_admissible_region() {
        let s = space_2d();
        let c = s.center();
        let wild = Point::from(&[97.3, -44.0][..]);
        let proj = s.project(&wild, &c, Rounding::TowardCenter);
        assert!(s.is_admissible(&proj));
        assert_eq!(proj.as_slice(), &[10.0, -1.0]);
    }

    #[test]
    fn projection_rounding_modes_differ() {
        let s = ParamSpace::new(vec![ParamDef::integer("a", 0, 10, 10).unwrap()]).unwrap();
        // admissible: 0, 10. x = 9.0, center = 0 -> toward-center gives 0,
        // nearest gives 10.
        let x = Point::from(&[9.0][..]);
        let c = Point::from(&[0.0][..]);
        assert_eq!(s.project(&x, &c, Rounding::TowardCenter)[0], 0.0);
        assert_eq!(s.project(&x, &c, Rounding::Nearest)[0], 10.0);
    }

    #[test]
    fn point_from_unit_covers_range() {
        let s = space_2d();
        let low = s.point_from_unit(&[0.0, 0.0]);
        assert_eq!(low.as_slice(), &[0.0, -1.0]);
        let high = s.point_from_unit(&[0.999999, 1.0]);
        assert_eq!(high[0], 10.0);
        assert!(high[1] <= 1.0 && high[1] > 0.99);
        for u in [0.0, 0.1, 0.3, 0.77, 0.9999] {
            assert!(s.is_admissible(&s.point_from_unit(&[u, u])));
        }
    }

    #[test]
    fn lattice_size_and_iteration() {
        let s = ParamSpace::new(vec![
            ParamDef::integer("a", 0, 2, 1).unwrap(),       // 3 values
            ParamDef::levels("b", vec![1.0, 4.0]).unwrap(), // 2 values
        ])
        .unwrap();
        assert_eq!(s.lattice_size(), Some(6));
        let pts: Vec<_> = s.lattice().collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0].as_slice(), &[0.0, 1.0]);
        assert_eq!(pts[1].as_slice(), &[0.0, 4.0]);
        assert_eq!(pts[5].as_slice(), &[2.0, 4.0]);
        // all unique and admissible
        for p in &pts {
            assert!(s.is_admissible(p));
        }
    }

    #[test]
    fn lattice_of_continuous_space_is_empty() {
        let s = space_2d();
        assert_eq!(s.lattice_size(), None);
        assert_eq!(s.lattice().count(), 0);
    }

    #[test]
    fn probe_points_interior() {
        let s = ParamSpace::new(vec![
            ParamDef::integer("a", 0, 10, 2).unwrap(),
            ParamDef::integer("b", 0, 4, 1).unwrap(),
        ])
        .unwrap();
        let v0 = Point::from(&[4.0, 2.0][..]);
        let probes = s.probe_points(&v0, 0.01);
        assert_eq!(probes.len(), 4);
        let slices: Vec<_> = probes.iter().map(|p| p.as_slice().to_vec()).collect();
        assert!(slices.contains(&vec![2.0, 2.0]));
        assert!(slices.contains(&vec![6.0, 2.0]));
        assert!(slices.contains(&vec![4.0, 1.0]));
        assert!(slices.contains(&vec![4.0, 3.0]));
    }

    #[test]
    fn probe_points_skip_boundary_sides() {
        let s = ParamSpace::new(vec![ParamDef::integer("a", 0, 4, 1).unwrap()]).unwrap();
        let at_lo = s.probe_points(&Point::from(&[0.0][..]), 0.01);
        assert_eq!(at_lo.len(), 1);
        assert_eq!(at_lo[0][0], 1.0);
        let at_hi = s.probe_points(&Point::from(&[4.0][..]), 0.01);
        assert_eq!(at_hi.len(), 1);
        assert_eq!(at_hi[0][0], 3.0);
    }

    #[test]
    fn check_dims() {
        let s = space_2d();
        assert!(s.check_dims(&Point::zeros(2)).is_ok());
        assert!(matches!(
            s.check_dims(&Point::zeros(3)),
            Err(ParamError::DimensionMismatch {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn names() {
        assert_eq!(space_2d().names(), vec!["a", "b"]);
    }

    #[test]
    fn named_point_access() {
        let s = space_2d();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zzz"), None);
        let p = s.point_from_pairs(&[("b", 0.5), ("a", 4.0)]).unwrap();
        assert_eq!(p.as_slice(), &[4.0, 0.5]);
        assert_eq!(s.value_of(&p, "a"), 4.0);
        assert_eq!(s.describe(&p), "a=4, b=0.5");
    }

    #[test]
    fn point_from_pairs_validation() {
        let s = space_2d();
        assert!(s.point_from_pairs(&[("a", 4.0)]).is_err()); // missing b
        assert!(s.point_from_pairs(&[("a", 4.0), ("a", 2.0)]).is_err()); // dup
        assert!(s.point_from_pairs(&[("a", 3.0), ("b", 0.0)]).is_err()); // 3 inadmissible
        assert!(s.point_from_pairs(&[("a", 2.0), ("q", 0.0)]).is_err()); // unknown
    }
}

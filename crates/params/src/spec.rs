//! A compact textual specification for parameter spaces.
//!
//! Active Harmony users describe tunables declaratively; this module
//! provides the equivalent for CLI tools and config files. One
//! parameter per `;`-separated clause:
//!
//! ```text
//! ntheta int 16 128 step 8; negrid int 4 48 step 4; nodes levels 1,2,4,8,16
//! tile int 8 512 step 8; alpha real 0.0 1.0
//! ```
//!
//! Grammar per clause (whitespace-separated):
//!
//! * `<name> int <lo> <hi> [step <s>]` — integer range (default step 1),
//! * `<name> real <lo> <hi>` — continuous range,
//! * `<name> levels <v1>,<v2>,…` — explicit ascending levels.

use crate::{ParamDef, ParamError, ParamSpace};

/// Parses a parameter-space specification.
///
/// ```
/// use harmony_params::spec::parse_space;
///
/// let space = parse_space("tile int 8 64 step 8; mode levels 0,1,2").unwrap();
/// assert_eq!(space.dims(), 2);
/// assert_eq!(space.lattice_size(), Some(8 * 3));
/// ```
///
/// # Errors
/// Returns [`ParamError`] with a clause-level description on any
/// malformed input.
pub fn parse_space(spec: &str) -> Result<ParamSpace, ParamError> {
    let mut defs = Vec::new();
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        defs.push(parse_clause(clause)?);
    }
    ParamSpace::new(defs)
}

fn parse_clause(clause: &str) -> Result<ParamDef, ParamError> {
    let tokens: Vec<&str> = clause.split_whitespace().collect();
    let invalid = |reason: String| ParamError::InvalidRange {
        name: tokens.first().unwrap_or(&"?").to_string(),
        reason,
    };
    if tokens.len() < 2 {
        return Err(invalid(format!("clause `{clause}` too short")));
    }
    let name = tokens[0];
    match tokens[1] {
        "int" => {
            if tokens.len() != 4 && !(tokens.len() == 6 && tokens[4] == "step") {
                return Err(invalid(format!(
                    "expected `{name} int <lo> <hi> [step <s>]`, got `{clause}`"
                )));
            }
            let lo = parse_i64(tokens[2], &invalid)?;
            let hi = parse_i64(tokens[3], &invalid)?;
            let step = if tokens.len() == 6 {
                parse_i64(tokens[5], &invalid)?
            } else {
                1
            };
            ParamDef::integer(name, lo, hi, step)
        }
        "real" => {
            if tokens.len() != 4 {
                return Err(invalid(format!(
                    "expected `{name} real <lo> <hi>`, got `{clause}`"
                )));
            }
            let lo = parse_f64(tokens[2], &invalid)?;
            let hi = parse_f64(tokens[3], &invalid)?;
            ParamDef::continuous(name, lo, hi)
        }
        "levels" => {
            if tokens.len() < 3 {
                return Err(invalid(format!(
                    "expected `{name} levels <v1>,<v2>,…`, got `{clause}`"
                )));
            }
            // allow spaces after commas: rejoin and resplit
            let joined = tokens[2..].join("");
            let levels = joined
                .split(',')
                .filter(|v| !v.is_empty())
                .map(|v| parse_f64(v, &invalid))
                .collect::<Result<Vec<_>, _>>()?;
            ParamDef::levels(name, levels)
        }
        other => Err(invalid(format!(
            "unknown parameter kind `{other}` (expected int/real/levels)"
        ))),
    }
}

fn parse_i64(tok: &str, invalid: &impl Fn(String) -> ParamError) -> Result<i64, ParamError> {
    tok.parse()
        .map_err(|_| invalid(format!("`{tok}` is not an integer")))
}

fn parse_f64(tok: &str, invalid: &impl Fn(String) -> ParamError) -> Result<f64, ParamError> {
    tok.parse()
        .map_err(|_| invalid(format!("`{tok}` is not a number")))
}

/// Renders a space back into the specification syntax (not guaranteed to
/// round-trip step-aligned upper bounds, but always re-parseable to an
/// equivalent space).
pub fn format_space(space: &ParamSpace) -> String {
    space
        .params()
        .iter()
        .map(|p| match p.kind() {
            crate::ParamKind::Continuous { lo, hi } => {
                format!("{} real {lo} {hi}", p.name())
            }
            crate::ParamKind::Integer { lo, hi, step } => {
                if *step == 1 {
                    format!("{} int {lo} {hi}", p.name())
                } else {
                    format!("{} int {lo} {hi} step {step}", p.name())
                }
            }
            crate::ParamKind::Levels(v) => {
                let levels: Vec<String> = v.iter().map(|x| format!("{x}")).collect();
                format!("{} levels {}", p.name(), levels.join(","))
            }
        })
        .collect::<Vec<_>>()
        .join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_gs2_space() {
        let s =
            parse_space("ntheta int 16 128 step 8; negrid int 4 48 step 4; nodes levels 1,2,4,8")
                .unwrap();
        assert_eq!(s.dims(), 3);
        assert_eq!(s.names(), vec!["ntheta", "negrid", "nodes"]);
        assert_eq!(s.param(0).cardinality(), Some(15));
        assert_eq!(s.param(2).cardinality(), Some(4));
    }

    #[test]
    fn parses_mixed_kinds_and_default_step() {
        let s = parse_space("a int -5 5; b real 0.5 1.5").unwrap();
        assert_eq!(s.param(0).cardinality(), Some(11));
        assert!(s.param(1).is_continuous());
    }

    #[test]
    fn whitespace_and_trailing_semicolons_tolerated() {
        let s = parse_space("  a int 0 3 ;;  b levels 1, 2, 4 ; ").unwrap();
        assert_eq!(s.dims(), 2);
        assert_eq!(s.param(1).cardinality(), Some(3));
    }

    #[test]
    fn rejects_malformed_clauses() {
        assert!(parse_space("a int 0").is_err());
        assert!(parse_space("a float 0 1").is_err());
        assert!(parse_space("a int zero 5").is_err());
        assert!(parse_space("a real 1.0 0.0").is_err()); // inverted range
        assert!(parse_space("a levels 3,2,1").is_err()); // descending
        assert!(parse_space("").is_err()); // empty space
        assert!(parse_space("a int 0 10 stride 2").is_err());
    }

    #[test]
    fn error_messages_name_the_parameter() {
        let err = parse_space("knob int x 5").unwrap_err();
        assert!(err.to_string().contains("knob"), "{err}");
    }

    #[test]
    fn format_round_trips() {
        let spec = "ntheta int 16 128 step 8; x real 0 1; nodes levels 1,2,8";
        let space = parse_space(spec).unwrap();
        let reparsed = parse_space(&format_space(&space)).unwrap();
        assert_eq!(space, reparsed);
    }
}

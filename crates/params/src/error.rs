use std::fmt;

/// Errors produced while constructing parameter definitions, spaces, or
/// simplices.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// A parameter range is empty or inverted (`lo > hi`), or a step is
    /// non-positive.
    InvalidRange {
        /// Name of the offending parameter.
        name: String,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An explicit level list is empty, unsorted, or contains NaN.
    InvalidLevels {
        /// Name of the offending parameter.
        name: String,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A point has the wrong number of coordinates for the space.
    DimensionMismatch {
        /// Dimensionality expected by the space.
        expected: usize,
        /// Dimensionality actually supplied.
        actual: usize,
    },
    /// A simplex was constructed with no vertices or with vertices of
    /// differing dimensionality.
    InvalidSimplex(
        /// Human-readable description of the problem.
        String,
    ),
    /// A parameter space with zero parameters was requested.
    EmptySpace,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::InvalidRange { name, reason } => {
                write!(f, "invalid range for parameter `{name}`: {reason}")
            }
            ParamError::InvalidLevels { name, reason } => {
                write!(f, "invalid levels for parameter `{name}`: {reason}")
            }
            ParamError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            ParamError::InvalidSimplex(reason) => write!(f, "invalid simplex: {reason}"),
            ParamError::EmptySpace => write!(f, "parameter space has no parameters"),
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = ParamError::InvalidRange {
            name: "ntheta".into(),
            reason: "lo (10) > hi (2)".into(),
        };
        assert!(e.to_string().contains("ntheta"));
        assert!(e.to_string().contains("lo (10) > hi (2)"));

        let e = ParamError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3, got 2");

        let e = ParamError::EmptySpace;
        assert!(e.to_string().contains("no parameters"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(ParamError::EmptySpace);
    }
}

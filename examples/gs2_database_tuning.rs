//! The paper's §6 methodology end-to-end: build a sparse performance
//! database of the GS2-like application, then tune against the database
//! (with nearest-neighbour interpolation for missing configurations)
//! under Pareto noise, comparing estimators.
//!
//! ```text
//! cargo run --release --example gs2_database_tuning
//! ```

use harmony::prelude::*;

fn session(db: &PerfDatabase, estimator: Estimator, rho: f64, seed: u64) -> TuningOutcome {
    let noise = if rho == 0.0 {
        Noise::None
    } else {
        Noise::paper_default(rho)
    };
    let tuner = OnlineTuner::new(TunerConfig::paper_default(100, estimator, seed));
    let mut pro = ProOptimizer::with_defaults(db.space().clone());
    tuner
        .run(db, &noise, &mut pro)
        .expect("tuning session produced a recommendation")
}

fn main() {
    // the "recorded" performance database: 60% of the lattice measured,
    // the rest interpolated from the 4 nearest neighbours (§6)
    let gs2 = Gs2Model::paper_scale();
    let mut rng = seeded_rng(42);
    let db = PerfDatabase::from_objective(&gs2, 0.6, 4, &mut rng);
    println!(
        "database: {} entries, {:.0}% lattice coverage",
        db.len(),
        db.coverage() * 100.0
    );

    let (opt_point, opt_val) = best_on_lattice(&db).expect("discrete space");
    println!(
        "database optimum: ntheta={} negrid={} nodes={} -> {:.3} s/iter\n",
        opt_point[0], opt_point[1], opt_point[2], opt_val
    );

    println!("rho   estimator  best(ntheta,negrid,nodes)   true s/iter   Total_Time(100)");
    for rho in [0.0, 0.2, 0.4] {
        for est in [
            Estimator::Single,
            Estimator::MinOfK(3),
            Estimator::MeanOfK(3),
        ] {
            // average a few replications for stable output
            let reps = 10;
            let mut best_true = 0.0;
            let mut total = 0.0;
            let mut last = None;
            for r in 0..reps {
                let out = session(&db, est, rho, stream_seed(7, r));
                best_true += out.best_true_cost / reps as f64;
                total += out.total_time() / reps as f64;
                last = Some(out);
            }
            let out = last.expect("ran replications");
            println!(
                "{rho:<5} {:<10} ({:>3}, {:>2}, {:>2})            {best_true:>8.3}      {total:>10.1}",
                est.label(),
                out.best_point[0],
                out.best_point[1],
                out.best_point[2],
            );
        }
        println!();
    }
    println!("note how min-of-3 tracks the noise-free choice as rho grows,");
    println!("while single samples and mean-of-3 drift to worse configurations.");
}

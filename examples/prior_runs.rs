//! Prior-run reuse (the paper's reference [3], Chung & Hollingsworth
//! SC'04): log everything a tuning session measures, export it as a
//! performance database, and warm-start the next session from the
//! prior best.
//!
//! ```text
//! cargo run --release --example prior_runs
//! ```

use harmony::core::Logged;
use harmony::prelude::*;

fn config(seed: u64) -> TunerConfig {
    TunerConfig {
        full_occupancy: false,
        ..TunerConfig::paper_default(120, Estimator::MinOfK(2), seed)
    }
}

fn main() {
    let gs2 = Gs2Model::paper_scale();
    let noise = Noise::paper_default(0.2);

    // --- run 1: cold start, with logging ---
    let mut cold = Logged::new(ProOptimizer::with_defaults(gs2.space().clone()));
    let cold_out = OnlineTuner::new(config(1))
        .run(&gs2, &noise, &mut cold)
        .expect("tuning session produced a recommendation");
    let log = cold.log().clone();
    println!(
        "cold run:  best {} -> {:.3} s/iter  ({} configs measured, {} estimates)",
        gs2.space().describe(&cold_out.best_point),
        cold_out.best_true_cost,
        log.len(),
        log.total_visits(),
    );

    // --- the log is itself a performance database (§6 shape) ---
    let db = log.into_database(gs2.space().clone(), 4);
    println!(
        "exported:  prior-run database with {} entries ({:.1}% of the lattice)",
        db.len(),
        100.0 * db.coverage()
    );

    // --- run 2: warm start at the prior best ---
    let prior_best = log
        .best()
        .expect("cold run measured something")
        .point
        .clone();
    let mut warm_inner = ProOptimizer::with_defaults(gs2.space().clone());
    warm_inner.recenter(&prior_best);
    let mut warm = Logged::new(warm_inner);
    let warm_out = OnlineTuner::new(config(2))
        .run(&gs2, &noise, &mut warm)
        .expect("tuning session produced a recommendation");
    println!(
        "warm run:  best {} -> {:.3} s/iter",
        gs2.space().describe(&warm_out.best_point),
        warm_out.best_true_cost,
    );

    let optimum = best_on_lattice(&gs2).expect("finite lattice").1;
    println!(
        "optimality: cold {:.2}x, warm {:.2}x of the global optimum ({optimum:.3})",
        cold_out.best_true_cost / optimum,
        warm_out.best_true_cost / optimum,
    );
    println!("\nthe warm session starts its simplex where the cold one ended, so");
    println!("its budget refines the prior basin instead of rediscovering it");
    println!("(single instances are noisy; average with e.g. harmony-tune --reps).");
}

//! Non-stationary tuning: the environment shifts mid-run (another job
//! starts hammering the network, so communication costs triple) and the
//! optimal configuration moves. A stop-at-convergence tuner keeps
//! exploiting a stale configuration; PRO in continuous-monitoring mode
//! notices the regression through its re-probes and walks to the new
//! optimum.
//!
//! ```text
//! cargo run --release --example nonstationary_retuning
//! ```

use harmony::core::tuner::OnlineTuner;
use harmony::prelude::*;

fn main() {
    // phase 1: the quiet cluster
    let quiet = Gs2Model::paper_scale();
    // phase 2: a noisy neighbour saturates the interconnect
    let mut congested = Gs2Model::paper_scale();
    congested.comm_latency *= 3.0;
    congested.comm_bandwidth *= 3.0;

    let (q_opt, q_val) = best_on_lattice(&quiet).expect("discrete");
    let (c_opt, c_val) = best_on_lattice(&congested).expect("discrete");
    println!(
        "quiet optimum:     ({:>3},{:>2},{:>2}) -> {q_val:.3} s/iter",
        q_opt[0], q_opt[1], q_opt[2]
    );
    println!(
        "congested optimum: ({:>3},{:>2},{:>2}) -> {c_val:.3} s/iter",
        c_opt[0], c_opt[1], c_opt[2]
    );
    println!("(under congestion the whole surface reorders: configurations that");
    println!(" were near-optimal before the shift can become markedly worse)\n");

    let noise = Noise::paper_default(0.1);
    let steps = 800;
    let shift_at = 250;
    let cfg = TunerConfig {
        full_occupancy: false,
        ..TunerConfig::paper_default(steps, Estimator::MinOfK(2), 11)
    };

    println!("mode         final config        true s/iter (congested)   Total_Time({steps})");
    for (label, continuous) in [("stop", false), ("continuous", true)] {
        let pro_cfg = ProConfig {
            continuous,
            ..ProConfig::default()
        };
        let mut pro = ProOptimizer::new(quiet.space().clone(), pro_cfg);
        let phases: [(usize, &dyn Objective); 2] = [(0, &quiet), (shift_at, &congested)];
        let out = OnlineTuner::new(cfg)
            .run_phases(&phases, &noise, &mut pro)
            .expect("tuning session produced a recommendation");
        println!(
            "{label:<12} ({:>3},{:>2},{:>2})              {:>6.3}               {:>10.1}",
            out.best_point[0],
            out.best_point[1],
            out.best_point[2],
            out.best_true_cost,
            out.total_time(),
        );
    }
    println!("\nthe continuous tuner re-measures its running configuration each");
    println!("probe phase, detects the regression after the shift, and migrates;");
    println!("the stopping tuner stays wherever it converged before the shift.");
}

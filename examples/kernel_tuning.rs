//! Tuning classic HPC kernels: cache-blocked matrix multiply (the
//! ATLAS-style problem the paper contrasts with on-line tuning) and a
//! halo-exchange stencil decomposition — both under heavy-tailed
//! measurement noise, with exhaustive ground truth for reference.
//!
//! ```text
//! cargo run --release --example kernel_tuning
//! ```

use harmony::core::baselines::GeneticAlgorithm;
use harmony::prelude::*;
use harmony::surface::{StencilHalo, TiledMatMul};

fn tune(obj: &dyn Objective, rho: f64, r: f64, seed: u64) -> TuningOutcome {
    let noise = if rho == 0.0 {
        Noise::None
    } else {
        Noise::paper_default(rho)
    };
    let tuner = OnlineTuner::new(TunerConfig {
        full_occupancy: false,
        ..TunerConfig::paper_default(150, Estimator::MinOfK(3), seed)
    });
    let mut pro = ProOptimizer::new(
        obj.space().clone(),
        ProConfig {
            relative_size: r,
            ..ProConfig::default()
        },
    );
    tuner
        .run(obj, &noise, &mut pro)
        .expect("tuning session produced a recommendation")
}

fn report(name: &str, obj: &dyn Objective) {
    let (opt_point, opt_val) = best_on_lattice(obj).expect("discrete space");
    println!("== {name} ==");
    println!(
        "  exhaustive optimum {:?} -> {:.4e} s/iter ({} lattice points)",
        opt_point.as_slice(),
        opt_val,
        obj.space().lattice_size().expect("finite lattice"),
    );
    for (rho, r) in [(0.0, 0.2), (0.3, 0.2)] {
        let out = tune(obj, rho, r, 7);
        println!(
            "  PRO rho={rho:<4} r={r} -> {:?} = {:.4e} s/iter ({:.2}x optimum, {} evals)",
            out.best_point.as_slice(),
            out.best_true_cost,
            out.best_true_cost / opt_val,
            out.evaluations,
        );
    }
    // a population method for contrast (the paper's §2 trade-off: better
    // final points, more expensive transient)
    let tuner = OnlineTuner::new(TunerConfig {
        full_occupancy: false,
        ..TunerConfig::paper_default(150, Estimator::Single, 7)
    });
    let mut ga = GeneticAlgorithm::new(obj.space().clone(), 16, 0.4, 7);
    let out = tuner
        .run(obj, &Noise::None, &mut ga)
        .expect("tuning session produced a recommendation");
    println!(
        "  GA  (pop 16)      -> {:?} = {:.4e} s/iter ({:.2}x optimum, {} evals)",
        out.best_point.as_slice(),
        out.best_true_cost,
        out.best_true_cost / opt_val,
        out.evaluations,
    );
    println!();
}

fn main() {
    report(
        "tiled matrix multiply (ti, tj, tk)",
        &TiledMatMul::default_scale(),
    );
    report(
        "halo-exchange stencil (px, py, ghost)",
        &StencilHalo::default_scale(),
    );
    println!("Two morals. The stencil surface is local-search friendly: PRO");
    println!("walks to the optimal decomposition in a handful of batches. The");
    println!("matmul surface is deceptive — the cache-reuse gradient points");
    println!("*away* from the distant L1 basin, so PRO settles for the best");
    println!("L2-resident tiling while the population-based GA eventually digs");
    println!("out the deeper basin at a higher exploration cost: exactly the");
    println!("on-line-vs-final-quality trade-off of the paper's Section 2.");
}

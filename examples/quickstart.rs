//! Quickstart: tune a 2-parameter application with PRO in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The "application" is a synthetic kernel whose per-iteration time
//! depends on a tile size and a thread count; measurements are disturbed
//! by heavy-tailed (Pareto) noise from the two-job model, and PRO with
//! min-of-2 sampling tunes it on-line.

use harmony::prelude::*;

fn main() {
    // 1. describe the tunable parameters (what a user hands Harmony)
    let space = ParamSpace::new(vec![
        ParamDef::integer("tile", 8, 512, 8).expect("valid tile range"),
        ParamDef::integer("threads", 1, 64, 1).expect("valid thread range"),
    ])
    .expect("non-empty space");

    // 2. the application: true per-iteration seconds (unknown to PRO)
    let app = harmony::surface::objective::FnObjective::new("kernel", space.clone(), |p| {
        let (tile, threads) = (p[0], p[1]);
        let compute = 4096.0 / (tile * threads); // parallel work
        let overhead = 0.004 * threads + 0.02 * (tile / 64.0 - 1.0).abs(); // sync + cache
        0.2 + compute + overhead
    });

    // 3. heavy-tailed measurement noise: Pareto alpha=1.7, rho=0.2
    let noise = Noise::paper_default(0.2);

    // 4. run the on-line tuning session: 200 time steps on 64 processors
    let tuner = OnlineTuner::new(TunerConfig::paper_default(200, Estimator::MinOfK(2), 7));
    let mut pro = ProOptimizer::with_defaults(space);
    let outcome = tuner
        .run(&app, &noise, &mut pro)
        .expect("tuning session produced a recommendation");

    println!("converged:        {}", outcome.converged);
    println!(
        "best parameters:  tile={} threads={}",
        outcome.best_point[0], outcome.best_point[1]
    );
    println!("true cost:        {:.4} s/iter", outcome.best_true_cost);
    println!("Total_Time(200):  {:.2} s", outcome.total_time());
    println!("NTT:              {:.2} s", outcome.ntt(0.2));
    println!("evaluations used: {}", outcome.evaluations);

    // compare against the true optimum (exhaustive — the space is small)
    let (opt_point, opt_val) = best_on_lattice(&app).expect("discrete space");
    println!(
        "global optimum:   tile={} threads={} -> {:.4} s/iter",
        opt_point[0], opt_point[1], opt_val
    );
    assert!(
        outcome.best_true_cost <= 2.0 * opt_val,
        "tuning went badly wrong"
    );
}

//! The §4 measurement study as a library consumer would run it: generate
//! a cluster trace, test it for heavy tails (histogram mass, log-log
//! survival linearity, Hill estimator), and validate the two-job queue
//! model against its closed form.
//!
//! ```text
//! cargo run --release --example heavy_tail_analysis
//! ```

use harmony::prelude::*;
use harmony::stats::tail::{classify_tail, hill_estimate, truncate};
use harmony::variability::des::TwoPriorityDes;
use harmony::variability::dist::Exponential;
use harmony::variability::trace::ClusterTraceModel;

fn main() {
    // --- 1. a GS2-like 64-processor, 800-iteration trace (Fig. 3) ---
    let trace = ClusterTraceModel::gs2_like(64, 800).generate(2005);
    let samples = trace.flatten();
    let summary = Summary::of(&samples);
    println!("trace: {} samples", summary.n());
    println!(
        "  mean {:.2}s  median {:.2}s  max {:.2}s",
        summary.mean(),
        summary.median(),
        summary.max()
    );
    println!(
        "  cross-processor correlation (p0,p1): {:.2}",
        trace.pearson(0, 1)
    );

    // --- 2. heavy-tail diagnostics (Fig. 4/5) ---
    let hist = Histogram::from_samples(&samples, 20);
    println!(
        "  top-3-bin mass: {:.4} (non-negligible => spikes)",
        hist.tail_mass(3)
    );
    let verdict = classify_tail(&samples, 0.2);
    println!(
        "  log-log tail fit: alpha={:.2} r2={:.3} heavy={}",
        verdict.alpha, verdict.r2, verdict.heavy
    );
    let hill = hill_estimate(&samples, samples.len() / 20);
    println!("  Hill estimator:   alpha={hill:.2}");

    // --- 3. the small-spike component (Fig. 6/7) ---
    let small = truncate(&samples, 5.0);
    let v2 = classify_tail(&small, 0.3);
    println!(
        "  truncated (<=5s): {} samples, tail slope alpha={:.2}",
        small.len(),
        v2.alpha
    );

    // --- 4. two-job queue model vs eq. 6 ---
    println!("\ntwo-priority queue: E[y] vs f/(1-rho)  (f = 5s)");
    let mut rng = seeded_rng(9);
    for rho in [0.1, 0.2, 0.3, 0.4] {
        let q = TwoPriorityDes::with_rho(rho, Exponential::with_mean(0.2));
        let (mean, se) = q.mean_finishing_time(5.0, 50_000, &mut rng);
        let analytic = 5.0 / (1.0 - rho);
        println!(
            "  rho={rho:.2}  des={mean:.3} (+/-{se:.3})  analytic={analytic:.3}  rel_err={:.2}%",
            100.0 * (mean - analytic).abs() / analytic
        );
    }

    // --- 5. why the min operator works (eq. 19) ---
    println!("\nmin-of-K de-heavy-tails Pareto(alpha=0.9) noise (infinite mean!):");
    let noise = Pareto::new(0.9, 1.0);
    for k in [1usize, 2, 3, 5] {
        let n = 100_000;
        let mut mins = Vec::with_capacity(n);
        for _ in 0..n {
            let m = (0..k)
                .map(|_| noise.sample(&mut rng))
                .fold(f64::INFINITY, f64::min);
            mins.push(m);
        }
        let s = Summary::of(&mins);
        println!(
            "  K={k}: sample mean {:>8.2}  p99 {:>8.2}  (K*alpha = {:.1}, finite mean needs > 1)",
            s.mean(),
            s.quantile(0.99),
            k as f64 * 0.9
        );
    }
}

//! The whole paper in one run: each section's claim, verified live at
//! reduced scale. A narrative companion to the full-scale
//! `harmony-bench` harness (see EXPERIMENTS.md for paper-scale numbers).
//!
//! ```text
//! cargo run --release --example paper_tour
//! ```

use harmony::analysis::TraceReport;
use harmony::core::nelder_mead::NelderMead;
use harmony::core::sro::SroOptimizer;
use harmony::prelude::*;
use harmony::stats::minop;
use harmony::variability::des::TwoPriorityDes;
use harmony::variability::dist::Exponential;
use harmony::variability::trace::ClusterTraceModel;

fn session(
    obj: &dyn Objective,
    opt: &mut dyn Optimizer,
    noise: &Noise,
    steps: usize,
    seed: u64,
) -> TuningOutcome {
    OnlineTuner::new(TunerConfig {
        full_occupancy: false,
        ..TunerConfig::paper_default(steps, Estimator::Single, seed)
    })
    .run(obj, noise, opt)
    .expect("tuning session produced a recommendation")
}

fn main() {
    let gs2 = Gs2Model::paper_scale();
    let noise = Noise::paper_default(0.1);

    println!("== Section 2: the on-line metric ==");
    println!("Total_Time integrates every visited configuration, so the");
    println!("algorithm with the best final configuration need not win it:\n");
    let mut results = Vec::new();
    for (name, opt) in [
        (
            "nelder-mead",
            &mut NelderMead::with_defaults(gs2.space().clone()) as &mut dyn Optimizer,
        ),
        ("sro", &mut SroOptimizer::with_defaults(gs2.space().clone())),
        ("pro", &mut ProOptimizer::with_defaults(gs2.space().clone())),
    ] {
        let out = session(&gs2, opt, &noise, 300, 7);
        println!(
            "  {name:<12} deployed cost {:.2}s/iter   Total_Time(300) = {:.0}s",
            out.best_true_cost,
            out.total_time()
        );
        results.push((name, out));
    }

    println!("\n== Section 4: performance variability is heavy tailed ==");
    let trace = ClusterTraceModel::gs2_like(32, 800).generate(2005);
    println!("{}", TraceReport::analyze(&trace));

    println!("\n== Section 4.1: the two-job model (eq. 6) ==");
    let queue = TwoPriorityDes::with_rho(0.3, Exponential::with_mean(0.2));
    let mut rng = seeded_rng(1);
    let (mean, _) = queue.mean_finishing_time(5.0, 30_000, &mut rng);
    println!(
        "  DES E[y] = {mean:.3} vs closed form f/(1-rho) = {:.3}",
        5.0 / 0.7
    );

    println!("\n== Section 5.1: the min operator de-heavy-tails (eq. 19) ==");
    for k in [1usize, 2, 3] {
        println!(
            "  K={k}: min of K Pareto(1.7) samples has tail index {:.1} -> variance {}",
            1.7 * k as f64,
            if minop::min_variance(1.7, 1.0, k).is_finite() {
                "finite"
            } else {
                "INFINITE"
            }
        );
    }
    println!(
        "  eq. 22: to order two points separated by lambda=0.4 with error < 1%,\n  K0 = {} samples suffice",
        minop::required_samples(1.7, 2.0, 0.4, 0.01)
    );

    println!("\n== Section 6.2: multi-sampling in the tuning loop ==");
    for (est, label) in [
        (Estimator::Single, "single"),
        (Estimator::MinOfK(3), "min-of-3"),
        (Estimator::MeanOfK(3), "mean-of-3"),
    ] {
        let heavy = Noise::Pareto {
            alpha: 1.1,
            rho: 0.3,
        };
        let reps = 20;
        let avg: f64 = (0..reps)
            .map(|r| {
                let tuner = OnlineTuner::new(TunerConfig {
                    full_occupancy: false,
                    ..TunerConfig::paper_default(100, est, stream_seed(9, r))
                });
                let mut pro = ProOptimizer::with_defaults(gs2.space().clone());
                tuner
                    .run(&gs2, &heavy, &mut pro)
                    .expect("tuning session produced a recommendation")
                    .best_true_cost
            })
            .sum::<f64>()
            / reps as f64;
        println!("  {label:<10} avg deployed true cost: {avg:.3} s/iter");
    }
    println!("\n(min-of-3 <= single <= mean-of-3 under infinite-variance noise;");
    println!(" full-scale sweeps: cargo run --release -p harmony-bench --bin run_all -- --full)");
}

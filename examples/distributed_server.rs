//! The Active-Harmony-style client/server architecture with real
//! threads: a tuning server owns PRO while 16 client threads (simulated
//! SPMD processes) fetch parameter assignments, measure under local
//! noise, and report back over channels. With more clients than
//! candidate points, extra capacity gives free multi-sampling (§5.2).
//!
//! ```text
//! cargo run --release --example distributed_server
//! ```

use harmony::prelude::*;

fn main() {
    let gs2 = Gs2Model::paper_scale();
    let noise = Noise::paper_default(0.25);

    println!("distributed tuning of GS2 (3 params) on 16 client threads\n");
    println!("estimator   steps  evals   best(ntheta,negrid,nodes)  true s/iter");
    for est in [Estimator::Single, Estimator::MinOfK(4)] {
        let cfg = ServerConfig::new(16, 150, est, 11).expect("valid server config");
        let mut pro = ProOptimizer::with_defaults(gs2.space().clone());
        let out = run_distributed(&gs2, &noise, &mut pro, cfg);
        println!(
            "{:<10} {:>6} {:>6}   ({:>3}, {:>2}, {:>2})              {:>8.3}",
            est.label(),
            out.trace.len(),
            out.evaluations,
            out.best_point[0],
            out.best_point[1],
            out.best_point[2],
            out.best_true_cost,
        );
    }

    // ground truth for reference
    let (p, v) = best_on_lattice(&gs2).expect("discrete space");
    println!(
        "\nglobal optimum: ({}, {}, {}) -> {v:.3} s/iter",
        p[0], p[1], p[2]
    );
    println!("min-of-4 costs barely more wall-clock: the samples ride on idle clients.");
}

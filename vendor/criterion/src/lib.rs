//! Vendored, dependency-free benchmark harness.
//!
//! The build environment for this repository cannot reach crates.io, so
//! this crate implements the Criterion API subset the workspace's bench
//! targets use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up, then timed over
//! adaptively sized batches until the measurement window is filled; the
//! per-iteration mean, median, and min across batches are reported on
//! stdout. Under `cargo test` (or with `--test` in the args) every
//! benchmark body runs exactly once so bench code is exercised cheaply.
//!
//! A `--save-baseline`-style workflow is out of scope; compare runs by
//! diffing the printed table (EXPERIMENTS.md records the numbers this
//! repo cares about).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: filters and runs registered benchmarks.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // cargo bench passes `--bench`; cargo test passes `--test` (and
        // harness flags we ignore). Positional non-flag args filter by
        // substring, like upstream.
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
        Criterion {
            filter,
            test_mode,
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the nominal sample count (accepted for API compatibility;
    /// the adaptive batcher ignores it).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one benchmark, unless filtered out.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(r) if !self.test_mode => println!(
                "{id:<44} time: [{} {} {}]  ({} iters)",
                fmt_ns(r.min_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.median_ns),
                r.iters,
            ),
            _ => println!("{id:<44} ok (test mode)"),
        }
        self
    }
}

struct Report {
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    iters: u64,
}

/// Times one benchmark body.
pub struct Bencher {
    test_mode: bool,
    measurement_time: Duration,
    warm_up_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `routine`, preventing its result from being optimised
    /// away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // warm up and estimate a batch size targeting ~1ms per batch
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.001 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::new();
        let mut total_iters: u64 = 0;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            samples.push(elapsed / batch as f64);
            total_iters += batch;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ns = samples[samples.len() / 2];
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        self.report = Some(Report {
            mean_ns,
            median_ns,
            min_ns: samples[0],
            iters: total_iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion {
            filter: None,
            test_mode: false,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(2),
        };
        let mut ran = false;
        c.bench_function("smoke/add", |b| {
            ran = true;
            b.iter(|| black_box(1u64) + black_box(2u64))
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut c = Criterion {
            filter: Some("only-this".into()),
            test_mode: true,
            measurement_time: Duration::from_millis(1),
            warm_up_time: Duration::from_millis(1),
        };
        let mut ran = false;
        c.bench_function("something-else", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
            measurement_time: Duration::from_millis(1),
            warm_up_time: Duration::from_millis(1),
        };
        let mut count = 0u32;
        c.bench_function("once", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(2.0e9).contains('s'));
    }
}

//! Vendored, dependency-free property-testing harness.
//!
//! The build environment for this repository cannot reach crates.io, so
//! this crate re-implements the subset of the `proptest` API the
//! workspace's test suite uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`, `boxed`,
//! * range strategies for the numeric types, tuple strategies, [`strategy::Just`],
//!   `prop_oneof!`, a small `[class]{m,n}` string-pattern strategy,
//! * `prop::collection::{vec, btree_set}`.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: cases derive from a fixed per-test seed (plus the
//!   `PROPTEST_CASES` count override), so runs are exactly reproducible.
//! * **No shrinking**: a failing case reports its inputs verbatim.
//!   Failure seeds therefore do not need a persistence file; the
//!   `*.proptest-regressions` files upstream writes are ignored, and any
//!   previously recorded regression case should be promoted to an
//!   explicit unit test (see `tests/property_cluster.rs`).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface used by the tests: traits, config, macros,
/// and the `prop` module alias.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias matching upstream's `prop::` paths (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with its inputs reported) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Uniform choice between several strategies producing the same value
/// type. Weights are not supported (the workspace does not use them).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over deterministically generated
/// cases. An optional leading `#![proptest_config(expr)]` sets the case
/// count for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let strategies = ($($strat,)+);
            for case in 0..cases {
                let values =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let inputs = format!(
                    concat!("(", $(stringify!($arg), ", ",)+ ") = {:?}"),
                    &values,
                );
                let outcome = (move || -> ::std::result::Result<(), String> {
                    let ($($arg,)+) = values;
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name), case + 1, cases, msg, inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0i64..10, y in 0.5f64..1.5, b in 0usize..3) {
            prop_assert!((0..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
            prop_assert!(b < 3);
        }

        #[test]
        fn collections(v in prop::collection::vec(0u64..100, 1..10),
                       s in prop::collection::btree_set(-50i64..50, 2..6)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!((2..6).contains(&s.len()));
        }

        #[test]
        fn strings_and_oneof(
            name in "[a-z]{1,8}",
            junk in "[ -~]{0,60}",
            pick in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
        ) {
            prop_assert!((1..=8).contains(&name.len()));
            prop_assert!(name.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(junk.len() <= 60);
            prop_assert!(junk.chars().all(|c| (' '..='~').contains(&c)));
            prop_assert!((1..5).contains(&pick));
        }

        #[test]
        fn maps_and_flat_maps(
            (len, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0f64..1.0, n))
            }),
            doubled in (0i64..50).prop_map(|x| x * 2),
        ) {
            prop_assert_eq!(v.len(), len);
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 99);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_respected(x in 0u64..1000) {
            // cases counted via determinism: just exercise the path
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 1..20);
        let mut a = TestRng::for_test("determinism");
        let mut b = TestRng::for_test("determinism");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    #[allow(unnameable_test_items)]
    fn failing_case_reports_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}

//! Test configuration and the deterministic case RNG.

/// Per-block configuration (only the case count is modelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    /// Upstream's default: 256 cases.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator driving all strategies: SplitMix64 seeded
/// from a hash of the test name, so every test explores its own fixed
/// sequence and reruns reproduce failures exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw `u64`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; unbiased via multiply-with-rejection.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` (53-bit).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_rngs_are_deterministic_and_distinct() {
        let mut a = TestRng::for_test("t1");
        let mut b = TestRng::for_test("t1");
        let mut c = TestRng::for_test("t2");
        assert_eq!(a.next(), b.next());
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::for_test("below");
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn default_config_is_256_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(9).cases, 9);
    }
}

//! Value-generation strategies (no shrinking — see crate docs).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Creates a union of one or more arms.
    ///
    /// # Panics
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.0.len() as u64) as usize;
        self.0[arm].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).generate(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String-pattern strategy: a `&str` is interpreted as a tiny regex
/// subset — a sequence of atoms, each a literal character or a character
/// class `[a-z0-9_]` (ranges and literals, no negation), optionally
/// repeated with `{n}`, `{m,n}`, `?`, `*` (0–8), or `+` (1–8).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            while let Some(d) = it.next() {
                match d {
                    ']' => break,
                    '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                        // recorded as a marker; resolved on the next char
                        set.push('\u{0}');
                    }
                    d => {
                        if set.last() == Some(&'\u{0}') {
                            set.pop();
                            let lo = prev.expect("range needs a start");
                            for code in (lo as u32 + 1)..=(d as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    set.push(ch);
                                }
                            }
                        } else {
                            set.push(d);
                        }
                        prev = Some(d);
                    }
                }
            }
            assert!(!set.is_empty(), "empty character class in `{pattern}`");
            set
        } else if c == '\\' {
            vec![it.next().expect("dangling escape")]
        } else {
            vec![c]
        };
        let (min, max) = match it.peek() {
            Some('{') => {
                it.next();
                let spec: String = it.by_ref().take_while(|&d| d != '}').collect();
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat lower bound"),
                        hi.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                it.next();
                (0, 1)
            }
            Some('*') => {
                it.next();
                (0, 8)
            }
            Some('+') => {
                it.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad repetition in `{pattern}`");
        atoms.push(PatternAtom { chars, min, max });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parsing_handles_classes_ranges_and_repeats() {
        let mut rng = TestRng::for_test("patterns");
        let s = "[a-c]{2,4}".generate(&mut rng);
        assert!((2..=4).contains(&s.len()));
        assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        let t = "ab[0-9]?x+".generate(&mut rng);
        assert!(t.starts_with("ab"));
        assert!(t.ends_with('x'));
        let u = "[ -~]{0,60}".generate(&mut rng);
        assert!(u.len() <= 60);
    }

    #[test]
    fn union_draws_every_arm() {
        let u = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed()]);
        let mut rng = TestRng::for_test("union");
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}

//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;

/// A size specification: a fixed length or a (half-open / inclusive)
/// range of lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>` with sizes drawn from `size`. The element
/// strategy must be able to produce at least `size` distinct values.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < n {
            set.insert(self.element.generate(rng));
            attempts += 1;
            assert!(
                attempts < 100 * (n + 1),
                "element strategy cannot produce {n} distinct values"
            );
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_fixed_and_ranged_sizes() {
        let mut rng = TestRng::for_test("vec");
        assert_eq!(vec(0u64..5, 3).generate(&mut rng).len(), 3);
        for _ in 0..50 {
            let v = vec(0u64..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            let w = vec(0u64..5, 2..=6).generate(&mut rng);
            assert!((2..=6).contains(&w.len()));
        }
    }

    #[test]
    fn btree_set_hits_exact_size() {
        let mut rng = TestRng::for_test("set");
        for _ in 0..50 {
            let s = btree_set(0i64..100, 2..6).generate(&mut rng);
            assert!((2..6).contains(&s.len()));
        }
    }
}

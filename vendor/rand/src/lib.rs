//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the *exact API subset it consumes*:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::SmallRng`] — xoshiro256++ with SplitMix64 `seed_from_u64`,
//!   matching the algorithm rand 0.9 uses for `SmallRng` on 64-bit
//!   targets,
//! * `Rng::random::<f64 | u64 | u32 | bool>()` and
//!   `Rng::random_range(..)` over integer and float ranges.
//!
//! Fidelity notes: the generator core (xoshiro256++, SplitMix64
//! seeding) and the `f64` standard distribution (53 high bits / 2⁵³)
//! follow the upstream algorithms. Derived conveniences (`bool`,
//! bounded integer ranges) are simple, documented mappings of one
//! `next_u64` draw each; every consumer in this workspace only requires
//! determinism-given-seed, which all of these provide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of uniform `u32` /
/// `u64` words. Object safe.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's word stream (the
/// standard distribution). One `next_u64` draw per sample, so stream
/// consumption is type-independent and reproducible.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision: `(x >> 11) · 2⁻⁵³`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    /// The sign bit of one `u64` draw.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        (rng.next_u64() >> 63) == 1
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, bound)` by Lemire's multiply-with-rejection
/// (unbiased).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impl!(
    u64 => u64,
    i64 => u64,
    u32 => u64,
    i32 => i64,
    usize => u64,
    u8 => u64,
);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::standard_sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // guard against rounding up to the excluded endpoint
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + (hi - lo) * f64::standard_sample(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws one value of `T` from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64` via the SplitMix64 expander (the
    /// seeding rand 0.9 uses for xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used only for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++ (the
    /// algorithm rand 0.9's `SmallRng` uses on 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for checkpoint/restore. A
        /// generator rebuilt with [`SmallRng::from_state`] from this
        /// value continues the exact same stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`SmallRng::state`] capture. An
        /// all-zero state (unreachable from any seeded generator) is
        /// perturbed exactly like `from_seed` to avoid the fixed point.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::from_seed([0u8; 32]);
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // an all-zero state would be a fixed point; perturb like
            // upstream xoshiro does
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    /// Alias: the workspace never requires a cryptographically strong
    /// generator, so `StdRng` shares the `SmallRng` core.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let i = rng.random_range(0u64..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(6);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues={trues}");
    }

    #[test]
    fn dyn_rngcore_supports_rng_methods() {
        let mut rng = SmallRng::seed_from_u64(8);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = SmallRng::seed_from_u64(10);
        rng.random_range(5u64..5);
    }
}

//! The `harmony-tune` command-line driver: describe a parameter space,
//! pick an objective, an algorithm, a noise level, and an estimator, and
//! run one on-line tuning session.
//!
//! ```text
//! harmony-tune --objective gs2 --algo pro --rho 0.2 --estimator min3
//! harmony-tune --space "tile int 8 512 step 8; threads int 1 64" \
//!              --objective sphere --steps 200 --seed 7
//! ```

use crate::core::baselines::{ExhaustiveSweep, GeneticAlgorithm, RandomSearch, SimulatedAnnealing};
use crate::core::nelder_mead::NelderMead;
use crate::core::restart::restarting_pro;
use crate::core::sro::SroOptimizer;
use crate::core::surrogate::SurrogateOptimizer;
use crate::core::{Estimator, OnlineTuner, Optimizer, ProConfig, ProOptimizer, TunerConfig};
use crate::params::spec::parse_space;
use crate::params::ParamSpace;
use crate::surface::testfns::{Domain, TestFunction, TestObjective};
use crate::surface::{
    best_on_lattice, Gs2Model, Objective, PerfDatabase, StencilHalo, TiledMatMul,
};
use crate::variability::noise::Noise;
use crate::variability::seeded_rng;
use harmony_cluster::SamplingMode;

/// Parsed command-line configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CliConfig {
    /// Parameter-space spec (ignored for `gs2`/`database`, which carry
    /// their own space).
    pub space: Option<String>,
    /// Objective name: `gs2`, `database`, `matmul`, `stencil`,
    /// `sphere`, `rastrigin`, `rosenbrock`, `ackley`, `griewank`.
    pub objective: String,
    /// Algorithm: `pro`, `pro-multistart`, `sro`, `nelder-mead`,
    /// `random`, `sa`, `ga`, `exhaustive`.
    pub algo: String,
    /// Idle throughput `ρ` of the Pareto noise (0 disables noise).
    pub rho: f64,
    /// Pareto tail index.
    pub alpha: f64,
    /// Estimator spec: `single`, `minK`, `meanK`, `medianK` (e.g. `min3`).
    pub estimator: String,
    /// Time-step budget.
    pub steps: usize,
    /// Simulated processors.
    pub procs: usize,
    /// RNG seed.
    pub seed: u64,
    /// PRO continuous-monitoring mode.
    pub continuous: bool,
    /// Print the per-step trace as CSV to stdout.
    pub print_trace: bool,
    /// Number of independent replications to average (1 = single run).
    pub reps: usize,
}

impl Default for CliConfig {
    fn default() -> Self {
        CliConfig {
            space: None,
            objective: "gs2".into(),
            algo: "pro".into(),
            rho: 0.2,
            alpha: 1.7,
            estimator: "min2".into(),
            steps: 100,
            procs: 64,
            seed: 2005,
            continuous: false,
            print_trace: false,
            reps: 1,
        }
    }
}

/// Usage text.
pub const USAGE: &str =
    "harmony-tune — on-line parameter tuning (PRO / Active Harmony reproduction)

USAGE:
  harmony-tune [--objective gs2|database|matmul|stencil|sphere|rastrigin|rosenbrock|ackley|griewank]
               [--space \"<name> int <lo> <hi> [step <s>]; <name> real <lo> <hi>; ...\"]
               [--algo pro|pro-multistart|sro|nelder-mead|surrogate|random|sa|ga|exhaustive]
               [--rho <0..1>] [--alpha <pareto tail index>]
               [--estimator single|min<K>|mean<K>|median<K>]
               [--steps <n>] [--procs <n>] [--seed <n>]
               [--continuous] [--trace] [--reps <n>] [--help]
";

impl CliConfig {
    /// Parses command-line arguments (without the program name).
    ///
    /// # Errors
    /// Returns a human-readable message for unknown flags, missing or
    /// malformed values.
    pub fn parse<I, S>(args: I) -> Result<CliConfig, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut cfg = CliConfig::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let arg = arg.as_ref();
            let mut value = |flag: &str| -> Result<String, String> {
                it.next()
                    .map(|v| v.as_ref().to_string())
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match arg {
                "--space" => cfg.space = Some(value("--space")?),
                "--objective" => cfg.objective = value("--objective")?,
                "--algo" => cfg.algo = value("--algo")?,
                "--rho" => {
                    cfg.rho = value("--rho")?
                        .parse()
                        .map_err(|_| "--rho expects a number".to_string())?;
                }
                "--alpha" => {
                    cfg.alpha = value("--alpha")?
                        .parse()
                        .map_err(|_| "--alpha expects a number".to_string())?;
                }
                "--estimator" => cfg.estimator = value("--estimator")?,
                "--steps" => {
                    cfg.steps = value("--steps")?
                        .parse()
                        .map_err(|_| "--steps expects an integer".to_string())?;
                }
                "--procs" => {
                    cfg.procs = value("--procs")?
                        .parse()
                        .map_err(|_| "--procs expects an integer".to_string())?;
                }
                "--seed" => {
                    cfg.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed expects an integer".to_string())?;
                }
                "--reps" => {
                    cfg.reps = value("--reps")?
                        .parse()
                        .map_err(|_| "--reps expects an integer".to_string())?;
                    if cfg.reps == 0 {
                        return Err("--reps must be at least 1".into());
                    }
                }
                "--continuous" => cfg.continuous = true,
                "--trace" => cfg.print_trace = true,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
            }
        }
        if !(0.0..1.0).contains(&cfg.rho) {
            return Err("--rho must be in [0, 1)".into());
        }
        cfg.parse_estimator()?; // validate early
        Ok(cfg)
    }

    /// Resolves the estimator spec.
    pub fn parse_estimator(&self) -> Result<Estimator, String> {
        let e = self.estimator.as_str();
        if e == "single" {
            return Ok(Estimator::Single);
        }
        for (prefix, make) in [
            ("min", Estimator::MinOfK as fn(usize) -> Estimator),
            ("mean", Estimator::MeanOfK as fn(usize) -> Estimator),
            ("median", Estimator::MedianOfK as fn(usize) -> Estimator),
        ] {
            if let Some(k) = e.strip_prefix(prefix) {
                let k: usize = k
                    .parse()
                    .map_err(|_| format!("estimator `{e}`: expected e.g. {prefix}3"))?;
                if k == 0 {
                    return Err("estimator needs K >= 1".into());
                }
                return Ok(make(k));
            }
        }
        Err(format!(
            "unknown estimator `{e}` (single, minK, meanK, medianK)"
        ))
    }

    fn build_objective(&self) -> Result<Box<dyn Objective>, String> {
        let testfn = |f: TestFunction| -> Result<Box<dyn Objective>, String> {
            match &self.space {
                Some(spec) => {
                    let space = parse_space(spec).map_err(|e| e.to_string())?;
                    Ok(Box::new(SpacedTestFn { space, f }))
                }
                None => Ok(Box::new(TestObjective::new(
                    f,
                    Domain::Lattice {
                        lo: -5.0,
                        hi: 5.0,
                        steps: 21,
                    },
                    3,
                ))),
            }
        };
        match self.objective.as_str() {
            "gs2" => Ok(Box::new(Gs2Model::paper_scale())),
            "matmul" => Ok(Box::new(TiledMatMul::default_scale())),
            "stencil" => Ok(Box::new(StencilHalo::default_scale())),
            "database" => {
                let mut rng = seeded_rng(self.seed ^ 0xDB);
                Ok(Box::new(PerfDatabase::from_objective(
                    &Gs2Model::paper_scale(),
                    0.6,
                    4,
                    &mut rng,
                )))
            }
            "sphere" => testfn(TestFunction::Sphere),
            "rastrigin" => testfn(TestFunction::Rastrigin),
            "rosenbrock" => testfn(TestFunction::Rosenbrock),
            "ackley" => testfn(TestFunction::Ackley),
            "griewank" => testfn(TestFunction::Griewank),
            other => Err(format!("unknown objective `{other}`")),
        }
    }

    fn build_optimizer(&self, space: ParamSpace) -> Result<Box<dyn Optimizer>, String> {
        Ok(match self.algo.as_str() {
            "pro" => Box::new(ProOptimizer::new(
                space,
                ProConfig {
                    continuous: self.continuous,
                    ..ProConfig::default()
                },
            )),
            "pro-multistart" => Box::new(restarting_pro(space, ProConfig::default(), 6, self.seed)),
            "sro" => Box::new(SroOptimizer::with_defaults(space)),
            "nelder-mead" => Box::new(NelderMead::with_defaults(space)),
            "surrogate" => Box::new(SurrogateOptimizer::with_defaults(space, self.seed)),
            "random" => Box::new(RandomSearch::new(space, 6, self.seed)),
            "sa" => Box::new(SimulatedAnnealing::new(space, 2.0, 0.99, self.seed)),
            "ga" => Box::new(GeneticAlgorithm::new(space, 12, 0.4, self.seed)),
            "exhaustive" => Box::new(ExhaustiveSweep::new(space, self.procs)),
            other => return Err(format!("unknown algorithm `{other}`")),
        })
    }

    /// Runs the configured session, returning the printed report.
    ///
    /// # Errors
    /// Propagates configuration errors (objective/space/algorithm).
    pub fn run(&self) -> Result<String, String> {
        if self.reps > 1 {
            return self.run_averaged();
        }
        let objective = self.build_objective()?;
        let mut optimizer = self.build_optimizer(objective.space().clone())?;
        let estimator = self.parse_estimator()?;
        let noise = if self.rho == 0.0 {
            Noise::None
        } else {
            Noise::Pareto {
                alpha: self.alpha,
                rho: self.rho,
            }
        };
        let tuner = OnlineTuner::new(TunerConfig {
            procs: self.procs,
            max_steps: self.steps,
            estimator,
            mode: SamplingMode::SequentialSteps,
            seed: self.seed,
            full_occupancy: false,
            exploit_width: 6,
        });
        let out = tuner
            .run(objective.as_ref(), &noise, optimizer.as_mut())
            .map_err(|e| e.to_string())?;

        let mut report = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(report, "objective:   {}", objective.name());
        let _ = writeln!(report, "algorithm:   {}", optimizer.name());
        let _ = writeln!(
            report,
            "estimator:   {} | rho {} | alpha {}",
            self.estimator, self.rho, self.alpha
        );
        let names = objective.space().names();
        let coords: Vec<String> = names
            .iter()
            .zip(out.best_point.iter())
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        let _ = writeln!(report, "best config: {}", coords.join(", "));
        let _ = writeln!(report, "true cost:   {:.4} s/iter", out.best_true_cost);
        let _ = writeln!(
            report,
            "Total_Time({}) = {:.2} s  (NTT {:.2})",
            self.steps,
            out.total_time(),
            out.ntt(self.rho)
        );
        let _ = writeln!(
            report,
            "evaluations: {}  converged: {}",
            out.evaluations, out.converged
        );
        if let Some((p, v)) = best_on_lattice(objective.as_ref()) {
            let _ = writeln!(report, "global opt:  {:?} -> {v:.4} s/iter", p.as_slice());
        }
        if self.print_trace {
            let _ = writeln!(report, "step,t_k");
            for (i, t) in out.trace.step_times().iter().enumerate() {
                let _ = writeln!(report, "{},{t}", i + 1);
            }
        }
        Ok(report)
    }
}

impl CliConfig {
    /// Averaged mode (`--reps > 1`): runs independent replications and
    /// reports mean outcomes with bootstrap confidence intervals.
    fn run_averaged(&self) -> Result<String, String> {
        use crate::stats::resample::bootstrap_mean_ci;
        let estimator = self.parse_estimator()?;
        let noise = if self.rho == 0.0 {
            Noise::None
        } else {
            Noise::Pareto {
                alpha: self.alpha,
                rho: self.rho,
            }
        };
        let objective = self.build_objective()?;
        let mut ntts = Vec::with_capacity(self.reps);
        let mut costs = Vec::with_capacity(self.reps);
        for r in 0..self.reps {
            let mut optimizer = self.build_optimizer(objective.space().clone())?;
            let tuner = OnlineTuner::new(TunerConfig {
                procs: self.procs,
                max_steps: self.steps,
                estimator,
                mode: SamplingMode::SequentialSteps,
                seed: crate::variability::stream_seed(self.seed, r as u64),
                full_occupancy: false,
                exploit_width: 6,
            });
            let out = tuner
                .run(objective.as_ref(), &noise, optimizer.as_mut())
                .map_err(|e| e.to_string())?;
            ntts.push(out.ntt(self.rho));
            costs.push(out.best_true_cost);
        }
        let ntt_ci = bootstrap_mean_ci(&ntts, 1_000, 0.95, 7);
        let cost_ci = bootstrap_mean_ci(&costs, 1_000, 0.95, 7);
        let mut report = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(report, "objective:   {}", objective.name());
        let _ = writeln!(report, "algorithm:   {}", self.algo);
        let _ = writeln!(
            report,
            "estimator:   {} | rho {} | alpha {} | {} reps",
            self.estimator, self.rho, self.alpha, self.reps
        );
        let _ = writeln!(
            report,
            "mean NTT({}):    {:.2}  (95% CI {:.2}..{:.2})",
            self.steps, ntt_ci.estimate, ntt_ci.lo, ntt_ci.hi
        );
        let _ = writeln!(
            report,
            "mean true cost: {:.4}  (95% CI {:.4}..{:.4})",
            cost_ci.estimate, cost_ci.lo, cost_ci.hi
        );
        if let Some((p, v)) = best_on_lattice(objective.as_ref()) {
            let _ = writeln!(
                report,
                "global opt:     {:?} -> {v:.4} s/iter",
                p.as_slice()
            );
        }
        Ok(report)
    }
}

/// A test function bound to a user-specified space.
struct SpacedTestFn {
    space: ParamSpace,
    f: TestFunction,
}

impl Objective for SpacedTestFn {
    fn space(&self) -> &ParamSpace {
        &self.space
    }
    fn eval(&self, x: &crate::params::Point) -> f64 {
        1.0 + self.f.raw(x.as_slice())
    }
    fn name(&self) -> &str {
        self.f.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults_and_flags() {
        let cfg = CliConfig::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cfg, CliConfig::default());
        let cfg = CliConfig::parse([
            "--objective",
            "sphere",
            "--algo",
            "sro",
            "--rho",
            "0.3",
            "--steps",
            "50",
            "--estimator",
            "min4",
            "--continuous",
        ])
        .unwrap();
        assert_eq!(cfg.objective, "sphere");
        assert_eq!(cfg.algo, "sro");
        assert_eq!(cfg.rho, 0.3);
        assert_eq!(cfg.steps, 50);
        assert!(cfg.continuous);
        assert_eq!(cfg.parse_estimator().unwrap(), Estimator::MinOfK(4));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(CliConfig::parse(["--bogus"]).is_err());
        assert!(CliConfig::parse(["--rho"]).is_err());
        assert!(CliConfig::parse(["--rho", "1.5"]).is_err());
        assert!(CliConfig::parse(["--estimator", "min0"]).is_err());
        assert!(CliConfig::parse(["--estimator", "max3"]).is_err());
        assert!(CliConfig::parse(["--help"]).is_err()); // usage via Err
    }

    #[test]
    fn estimator_specs() {
        let mut cfg = CliConfig::default();
        for (s, e) in [
            ("single", Estimator::Single),
            ("min3", Estimator::MinOfK(3)),
            ("mean5", Estimator::MeanOfK(5)),
            ("median7", Estimator::MedianOfK(7)),
        ] {
            cfg.estimator = s.into();
            assert_eq!(cfg.parse_estimator().unwrap(), e);
        }
    }

    #[test]
    fn runs_gs2_session() {
        let cfg = CliConfig {
            steps: 60,
            ..CliConfig::default()
        };
        let report = cfg.run().unwrap();
        assert!(report.contains("objective:   gs2"));
        assert!(report.contains("best config: ntheta="));
        assert!(report.contains("Total_Time(60)"));
    }

    #[test]
    fn runs_custom_space_sphere() {
        let cfg = CliConfig {
            objective: "sphere".into(),
            space: Some("x int -10 10; y int -10 10".into()),
            estimator: "single".into(),
            rho: 0.0,
            steps: 50,
            ..CliConfig::default()
        };
        let report = cfg.run().unwrap();
        assert!(report.contains("best config: x=0, y=0"), "{report}");
        assert!(report.contains("true cost:   1.0000"));
    }

    #[test]
    fn trace_flag_prints_steps() {
        let cfg = CliConfig {
            steps: 10,
            print_trace: true,
            rho: 0.0,
            estimator: "single".into(),
            ..CliConfig::default()
        };
        let report = cfg.run().unwrap();
        assert!(report.contains("step,t_k"));
        assert!(report.contains("10,"));
    }

    #[test]
    fn new_objectives_and_multistart_run() {
        for objective in ["matmul", "stencil"] {
            let cfg = CliConfig {
                objective: objective.into(),
                algo: "pro-multistart".into(),
                steps: 40,
                estimator: "single".into(),
                rho: 0.0,
                ..CliConfig::default()
            };
            let report = cfg.run().unwrap_or_else(|e| panic!("{objective}: {e}"));
            assert!(report.contains("pro"), "{report}");
            assert!(report.contains("true cost:"), "{report}");
        }
    }

    #[test]
    fn averaged_mode_reports_cis() {
        let cfg = CliConfig {
            reps: 5,
            steps: 40,
            ..CliConfig::default()
        };
        let report = cfg.run().unwrap();
        assert!(report.contains("5 reps"), "{report}");
        assert!(report.contains("95% CI"), "{report}");
        assert!(report.contains("mean true cost"), "{report}");
    }

    #[test]
    fn reps_flag_parses_and_validates() {
        let cfg = CliConfig::parse(["--reps", "10"]).unwrap();
        assert_eq!(cfg.reps, 10);
        assert!(CliConfig::parse(["--reps", "0"]).is_err());
        assert!(CliConfig::parse(["--reps", "x"]).is_err());
    }

    #[test]
    fn every_algorithm_runs() {
        for algo in [
            "pro",
            "pro-multistart",
            "sro",
            "nelder-mead",
            "random",
            "sa",
            "ga",
        ] {
            let cfg = CliConfig {
                algo: algo.into(),
                steps: 30,
                estimator: "single".into(),
                ..CliConfig::default()
            };
            let report = cfg.run().unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(report.contains("true cost:"), "{algo}");
        }
    }
}

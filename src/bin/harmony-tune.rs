//! `harmony-tune` — run one on-line tuning session from the command
//! line. See `harmony::cli::USAGE` (or `--help`).

use harmony::cli::CliConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match CliConfig::parse(&args).and_then(|cfg| cfg.run()) {
        Ok(report) => print!("{report}"),
        Err(msg) => {
            eprint!("{msg}");
            if !msg.ends_with('\n') {
                eprintln!();
            }
            std::process::exit(2);
        }
    }
}

//! High-level trace analysis: the complete §4 measurement study as one
//! call.
//!
//! Combines the cluster-trace substrate (`harmony-variability`) with the
//! tail diagnostics (`harmony-stats`) into a single [`TraceReport`] —
//! everything the paper's Figures 3–7 read off a measured trace: base
//! behaviour, spike structure, cross-processor correlation, heavy-tail
//! verdicts before and after truncation, and temporal burstiness.

use crate::core::TuningOutcome;
use crate::stats::resample::{autocorrelation, bootstrap_mean_ci, BootstrapCi};
use crate::stats::tail::{classify_tail, hill_estimate, truncate, TailVerdict};
use crate::stats::{Histogram, Summary};
use crate::surface::Objective;
use crate::variability::trace::ClusterTrace;
use std::fmt;

/// The distilled §4 measurement study of one cluster trace.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Total samples analysed (procs × iterations).
    pub n: usize,
    /// Sample mean (seconds).
    pub mean: f64,
    /// Sample median — with heavy tails, far below the mean.
    pub median: f64,
    /// Largest observed iteration time.
    pub max: f64,
    /// Mass in the top 3 of 20 histogram bins (the Fig. 4 eyeball test).
    pub top_bin_mass: f64,
    /// Hill tail-index estimate at `k = n/50`.
    pub hill_alpha: f64,
    /// Log-log survival-slope verdict on the asymptotic tail (top 5 %).
    pub tail: TailVerdict,
    /// The same verdict after truncating at `cutoff` (Fig. 6/7).
    pub truncated_tail: TailVerdict,
    /// Truncation cutoff used.
    pub cutoff: f64,
    /// Fraction of samples surviving truncation.
    pub kept_fraction: f64,
    /// Mean pairwise Pearson correlation across the first four
    /// processors (Fig. 3's "high correlation" observation).
    pub mean_correlation: f64,
    /// Lag-1 autocorrelation of processor 0's series (burstiness).
    pub lag1_autocorrelation: f64,
}

impl TraceReport {
    /// Runs the full analysis with the paper's 5-second truncation.
    pub fn analyze(trace: &ClusterTrace) -> Self {
        TraceReport::analyze_with_cutoff(trace, 5.0)
    }

    /// Runs the full analysis with an explicit truncation cutoff.
    ///
    /// # Panics
    /// Panics on an empty trace or a cutoff below every sample.
    pub fn analyze_with_cutoff(trace: &ClusterTrace, cutoff: f64) -> Self {
        let samples = trace.flatten();
        assert!(!samples.is_empty(), "analysis of an empty trace");
        let summary = Summary::of(&samples);
        let hist = Histogram::from_samples(&samples, 20);
        let kept = truncate(&samples, cutoff);
        assert!(
            kept.len() >= 100,
            "cutoff {cutoff} keeps too few samples for tail analysis"
        );
        let procs = trace.procs().min(4);
        let mut corr_sum = 0.0;
        let mut corr_n = 0usize;
        for a in 0..procs {
            for b in (a + 1)..procs {
                corr_sum += trace.pearson(a, b);
                corr_n += 1;
            }
        }
        TraceReport {
            n: samples.len(),
            mean: summary.mean(),
            median: summary.median(),
            max: summary.max(),
            top_bin_mass: hist.tail_mass(3),
            hill_alpha: hill_estimate(&samples, (samples.len() / 50).max(10)),
            tail: classify_tail(&samples, 0.05),
            truncated_tail: classify_tail(&kept, 0.05),
            cutoff,
            kept_fraction: kept.len() as f64 / samples.len() as f64,
            mean_correlation: if corr_n > 0 {
                corr_sum / corr_n as f64
            } else {
                0.0
            },
            lag1_autocorrelation: autocorrelation(trace.proc(0), 1),
        }
    }

    /// The paper's bottom line: is the variability heavy tailed?
    pub fn is_heavy_tailed(&self) -> bool {
        self.tail.heavy || (self.hill_alpha > 0.0 && self.hill_alpha < 2.0)
    }
}

impl fmt::Display for TraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace analysis ({} samples)", self.n)?;
        writeln!(
            f,
            "  mean {:.2}s  median {:.2}s  max {:.2}s",
            self.mean, self.median, self.max
        )?;
        writeln!(f, "  top-3-bin mass: {:.4}", self.top_bin_mass)?;
        writeln!(
            f,
            "  tail: hill alpha {:.2}; log-log slope alpha {:.2} (r2 {:.3}) -> heavy: {}",
            self.hill_alpha,
            self.tail.alpha,
            self.tail.r2,
            self.is_heavy_tailed()
        )?;
        writeln!(
            f,
            "  truncated at {:.1}s (kept {:.1}%): slope alpha {:.2} (r2 {:.3})",
            self.cutoff,
            100.0 * self.kept_fraction,
            self.truncated_tail.alpha,
            self.truncated_tail.r2
        )?;
        write!(
            f,
            "  cross-proc correlation {:.2}; lag-1 autocorrelation {:.2}",
            self.mean_correlation, self.lag1_autocorrelation
        )
    }
}

/// The distilled record of one tuning session: Total_Time/NTT, descent
/// speed, and the gap to ground truth (when the objective's lattice is
/// exhaustively searchable).
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// `Total_Time(K)` over the charged budget (eq. 2).
    pub total_time: f64,
    /// Normalised total time (eq. 23).
    pub ntt: f64,
    /// True cost of the deployed configuration.
    pub deployed_cost: f64,
    /// Global optimum of the objective, when computable.
    pub global_optimum: Option<f64>,
    /// `deployed_cost / global_optimum`, when computable.
    pub optimality_ratio: Option<f64>,
    /// Steps until the deployed configuration was within 25 % of the
    /// optimum, when computable and reached.
    pub steps_to_125: Option<usize>,
    /// Whether the optimizer's stopping criterion fired in budget.
    pub converged: bool,
    /// Objective evaluations consumed.
    pub evaluations: usize,
    /// Bootstrap 95 % CI of the per-step time (heavy-tailed steps make
    /// normal-theory intervals unreliable).
    pub step_time_ci: BootstrapCi,
}

impl SessionReport {
    /// Summarises a finished session against its objective.
    pub fn of<O: Objective + ?Sized>(outcome: &TuningOutcome, objective: &O, rho: f64) -> Self {
        let global = crate::surface::best_on_lattice(objective).map(|(_, v)| v);
        let steps_to_125 = global.and_then(|g| outcome.steps_to_quality(1.25 * g));
        SessionReport {
            total_time: outcome.total_time(),
            ntt: outcome.ntt(rho),
            deployed_cost: outcome.best_true_cost,
            global_optimum: global,
            optimality_ratio: global.map(|g| outcome.best_true_cost / g),
            steps_to_125,
            converged: outcome.converged,
            evaluations: outcome.evaluations,
            step_time_ci: bootstrap_mean_ci(outcome.trace.step_times(), 1_000, 0.95, 7),
        }
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "session: Total_Time {:.1}  NTT {:.1}  ({} evals, converged: {})",
            self.total_time, self.ntt, self.evaluations, self.converged
        )?;
        writeln!(
            f,
            "  deployed cost {:.4}{}",
            self.deployed_cost,
            match self.optimality_ratio {
                Some(r) => format!("  ({r:.2}x of optimum)"),
                None => String::new(),
            }
        )?;
        if let Some(steps) = self.steps_to_125 {
            writeln!(f, "  reached 1.25x of optimum after {steps} steps")?;
        }
        write!(
            f,
            "  mean step time {:.3}s  (95% bootstrap CI {:.3}..{:.3})",
            self.step_time_ci.estimate, self.step_time_ci.lo, self.step_time_ci.hi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variability::trace::ClusterTraceModel;

    fn report() -> TraceReport {
        let trace = ClusterTraceModel::gs2_like(16, 800).generate(2005);
        TraceReport::analyze(&trace)
    }

    #[test]
    fn detects_the_papers_signatures() {
        let r = report();
        assert_eq!(r.n, 16 * 800);
        assert!(r.mean > r.median, "heavy tails pull the mean up");
        assert!(r.max > 6.0);
        assert!(r.top_bin_mass > 0.0);
        assert!(r.is_heavy_tailed(), "{r}");
        assert!(r.mean_correlation > 0.5);
        assert!(r.kept_fraction > 0.9);
    }

    #[test]
    fn display_is_complete() {
        let text = report().to_string();
        for needle in ["trace analysis", "tail:", "truncated at", "correlation"] {
            assert!(text.contains(needle), "missing `{needle}` in\n{text}");
        }
    }

    #[test]
    fn quiet_trace_is_not_heavy() {
        let mut model = ClusterTraceModel::gs2_like(8, 800);
        model.big_prob = 0.0;
        model.small_prob = 0.0;
        model.jitter_sd = 0.05;
        let r = TraceReport::analyze(&model.generate(3));
        assert!(!r.is_heavy_tailed(), "{r}");
        assert!(r.max < 3.0);
    }

    #[test]
    #[should_panic(expected = "keeps too few samples")]
    fn absurd_cutoff_rejected() {
        let trace = ClusterTraceModel::gs2_like(4, 100).generate(1);
        TraceReport::analyze_with_cutoff(&trace, 0.01);
    }

    #[test]
    fn session_report_summarises_a_run() {
        use crate::prelude::*;
        let gs2 = Gs2Model::paper_scale();
        let tuner = OnlineTuner::new(TunerConfig {
            full_occupancy: false,
            ..TunerConfig::paper_default(80, Estimator::MinOfK(2), 3)
        });
        let mut pro = ProOptimizer::with_defaults(gs2.space().clone());
        let rho = 0.2;
        let out = tuner
            .run(&gs2, &Noise::paper_default(rho), &mut pro)
            .expect("tuning session produced a recommendation");
        let report = SessionReport::of(&out, &gs2, rho);
        assert_eq!(report.total_time, out.total_time());
        assert!((report.ntt - 0.8 * report.total_time).abs() < 1e-9);
        let ratio = report.optimality_ratio.expect("lattice is finite");
        assert!((1.0..3.0).contains(&ratio), "ratio={ratio}");
        assert!(report.step_time_ci.lo <= report.step_time_ci.estimate);
        assert!(report.step_time_ci.estimate <= report.step_time_ci.hi);
        let text = report.to_string();
        assert!(text.contains("deployed cost"), "{text}");
        assert!(text.contains("bootstrap CI"), "{text}");
    }

    #[test]
    fn session_report_without_ground_truth() {
        use crate::prelude::*;
        use crate::surface::objective::FnObjective;
        let space = ParamSpace::new(vec![
            harmony_params::ParamDef::continuous("x", -1.0, 1.0).unwrap()
        ])
        .unwrap();
        let obj = FnObjective::new("cont", space.clone(), |p| 1.0 + p[0] * p[0]);
        let tuner = OnlineTuner::new(TunerConfig {
            full_occupancy: false,
            ..TunerConfig::paper_default(40, Estimator::Single, 1)
        });
        let mut pro = ProOptimizer::with_defaults(space);
        let out = tuner
            .run(&obj, &Noise::None, &mut pro)
            .expect("tuning session produced a recommendation");
        let report = SessionReport::of(&out, &obj, 0.0);
        assert!(report.global_optimum.is_none());
        assert!(report.optimality_ratio.is_none());
        assert!(report.steps_to_125.is_none());
    }
}

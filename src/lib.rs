//! # harmony — parallel parameter tuning under performance variability
//!
//! A production-quality Rust reproduction of Tabatabaee, Tiwari &
//! Hollingsworth, *"Parallel Parameter Tuning for Applications with
//! Performance Variability"* (SC 2005) — the Parallel Rank Ordering
//! (PRO) extension of the Active Harmony on-line tuning system.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`params`] — parameter spaces, the projection operator `Π`, simplex
//!   geometry, initial-simplex construction,
//! * [`variability`] — heavy-tailed noise models, the two-priority-queue
//!   machine model and its discrete-event validation, cluster traces,
//! * [`surface`] — objectives: the synthetic GS2 model, the §6
//!   performance database with interpolation, standard test functions,
//! * [`stats`] — ECDF / histogram / Hill-estimator tail diagnostics and
//!   the closed-form min-of-K theory,
//! * [`cluster`] — SPMD time-step execution, `Total_Time`/NTT metrics,
//!   sample scheduling, a replication thread pool, deterministic fault
//!   injection,
//! * [`telemetry`] — deterministic structured tracing: logical-clock
//!   stamped events, counters, histograms, nestable spans, JSONL
//!   serialisation, trace summaries, and the operational layer
//!   (windowed metrics registry, span profiler, flight-recorder
//!   post-mortems),
//! * [`recovery`] — session persistence: versioned checkpoint codecs, a
//!   write-ahead observation log with snapshots, and supervisor health
//!   tracking for self-healing tuning sessions,
//! * [`core`] — the optimizers (PRO, SRO, Nelder–Mead, baselines), the
//!   estimator layer, the on-line tuning driver, and the threaded
//!   fault-tolerant Active-Harmony-style server.
//!
//! # Quickstart
//!
//! ```
//! use harmony::prelude::*;
//!
//! // tune the synthetic GS2 application under heavy-tailed noise
//! let gs2 = Gs2Model::paper_scale();
//! let noise = Noise::paper_default(0.2); // Pareto alpha=1.7, rho=0.2
//! let tuner = OnlineTuner::new(TunerConfig::paper_default(
//!     100,
//!     Estimator::MinOfK(2),
//!     42,
//! ));
//! let mut pro = ProOptimizer::with_defaults(gs2.space().clone());
//! let outcome = tuner.run(&gs2, &noise, &mut pro)?;
//! println!(
//!     "best {:?} -> {:.3}s/iter, Total_Time(100) = {:.1}s",
//!     outcome.best_point,
//!     outcome.best_true_cost,
//!     outcome.total_time()
//! );
//! assert!(outcome.best_true_cost < 10.0);
//! # Ok::<(), harmony::core::server::ServerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cli;

pub use harmony_cluster as cluster;
pub use harmony_core as core;
pub use harmony_params as params;
pub use harmony_recovery as recovery;
pub use harmony_stats as stats;
pub use harmony_surface as surface;
pub use harmony_telemetry as telemetry;
pub use harmony_variability as variability;

/// The most commonly used items in one import.
pub mod prelude {
    pub use harmony_cluster::{Cluster, FaultPlan, FleetState, SamplingMode, TuningTrace};
    pub use harmony_core::baselines::{GeneticAlgorithm, RandomSearch, SimulatedAnnealing};
    pub use harmony_core::nelder_mead::{NelderMead, NelderMeadConfig};
    pub use harmony_core::server::{
        run_distributed, run_recoverable, run_recoverable_traced, run_resilient,
        run_resilient_traced, run_session_traced, run_supervised, run_supervised_traced,
        RecoveryConfig, ServerConfig, ServerError, SupervisedOutcome, SupervisorReport,
    };
    pub use harmony_core::sro::{SroConfig, SroOptimizer};
    pub use harmony_core::{
        Estimator, FaultStats, OnlineTuner, Optimizer, ProConfig, ProOptimizer, SurrogateConfig,
        SurrogateOptimizer, TunerConfig, TuningOutcome,
    };
    pub use harmony_params::init::{InitialShape, DEFAULT_RELATIVE_SIZE};
    pub use harmony_params::{ParamDef, ParamKind, ParamSpace, Point, Rounding, Simplex};
    pub use harmony_recovery::{Checkpoint, SessionJournal, SupervisorConfig};
    pub use harmony_stats::{Ecdf, Histogram, Summary};
    pub use harmony_surface::{best_on_lattice, Gs2Model, Objective, PerfDatabase};
    pub use harmony_telemetry::{
        FlightRecorder, JsonlSink, MemorySink, MetricsRegistry, MetricsSink, NullSink, Profile,
        Telemetry, TelemetryConfig,
    };
    pub use harmony_variability::dist::{Distribution, Pareto};
    pub use harmony_variability::noise::{Noise, NoiseModel};
    pub use harmony_variability::{seeded_rng, stream_seed};
}

//! Property-based tests of the variability layer: distribution
//! invariants, the eq. 5–7 noise contract, and min-operator algebra.

use harmony::prelude::*;
use harmony::variability::des::TwoPriorityDes;
use harmony::variability::dist::{
    BoundedPareto, Distribution, Exponential, Gaussian, LogNormal, Uniform, Weibull,
};
use harmony::variability::noise::{mean_of_k, min_of_k};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pareto_quantile_cdf_roundtrip(alpha in 0.3f64..4.0, beta in 0.01f64..100.0, p in 0.0f64..0.999) {
        let d = Pareto::new(alpha, beta);
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-9);
        prop_assert!(x >= beta);
    }

    #[test]
    fn pareto_samples_respect_support(alpha in 0.3f64..4.0, beta in 0.01f64..100.0, seed in 0u64..1000) {
        let d = Pareto::new(alpha, beta);
        let mut rng = seeded_rng(seed);
        for _ in 0..64 {
            prop_assert!(d.sample(&mut rng) >= beta);
        }
    }

    #[test]
    fn survival_exponentiation_rule(alpha in 0.5f64..3.0, beta in 0.1f64..10.0, k in 1usize..8, z in 0.0f64..100.0) {
        // eq. 11: Q_min(z) = Q(z)^k
        let d = Pareto::new(alpha, beta);
        let z = beta + z;
        let single = d.survival(z);
        let k_fold = harmony::stats::minop::min_survival(alpha, beta, k, 0.0, z);
        prop_assert!((k_fold - single.powi(k as i32)).abs() < 1e-9);
    }

    #[test]
    fn bounded_pareto_stays_in_bounds(alpha in 0.3f64..3.0, lo in 0.01f64..5.0, w in 0.1f64..50.0, seed in 0u64..500) {
        let d = BoundedPareto::new(alpha, lo, lo + w);
        let mut rng = seeded_rng(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x <= lo + w, "x={x}");
        }
    }

    #[test]
    fn quantile_roundtrips_other_distributions(p in 0.001f64..0.999) {
        fn roundtrip<D: Distribution>(d: &D, p: f64) -> f64 {
            (d.cdf(d.quantile(p)) - p).abs()
        }
        prop_assert!(roundtrip(&Exponential::with_mean(2.0), p) < 1e-9);
        prop_assert!(roundtrip(&Gaussian::new(3.0, 1.5), p) < 1e-5);
        prop_assert!(roundtrip(&LogNormal::new(0.2, 0.7), p) < 1e-5);
        prop_assert!(roundtrip(&Weibull::new(1.4, 2.0), p) < 1e-9);
        prop_assert!(roundtrip(&Uniform::new(-2.0, 5.0), p) < 1e-9);
    }

    #[test]
    fn noise_floor_contract(rho in 0.01f64..0.9, f_v in 0.01f64..100.0, seed in 0u64..500) {
        // y >= f + n_min(f) for every model, every draw (eq. 5 with
        // n >= n_min)
        let mut rng = seeded_rng(seed);
        for model in [
            Noise::None,
            Noise::Pareto { alpha: 1.7, rho },
            Noise::Exponential { rho },
            Noise::Gaussian { rho, cv: 0.4 },
        ] {
            let floor = f_v + model.n_min(f_v);
            for _ in 0..16 {
                let y = model.observe(f_v, &mut rng);
                prop_assert!(y >= floor - 1e-12, "{model:?}: y={y} < floor={floor}");
            }
        }
    }

    #[test]
    fn n_min_ordering_is_preserved(rho in 0.01f64..0.9, f1 in 0.01f64..50.0, gap in 0.01f64..50.0) {
        // §5.1: f1 < f2  =>  f1 + n_min(f1) < f2 + n_min(f2)
        let m = Noise::Pareto { alpha: 1.7, rho };
        let f2 = f1 + gap;
        prop_assert!(f1 + m.n_min(f1) < f2 + m.n_min(f2));
    }

    #[test]
    fn min_of_k_never_exceeds_mean_of_k(k in 1usize..8, f_v in 0.1f64..20.0, rho in 0.0f64..0.8, seed in 0u64..500) {
        let m = Noise::Pareto { alpha: 1.7, rho };
        let mut rng_a = seeded_rng(seed);
        let mut rng_b = seeded_rng(seed);
        let mn = min_of_k(&m, f_v, k, &mut rng_a);
        let mean = mean_of_k(&m, f_v, k, &mut rng_b);
        // identical sample streams: min <= mean pointwise
        prop_assert!(mn <= mean + 1e-12);
    }

    #[test]
    fn des_finishing_time_at_least_demand(rho in 0.0f64..0.8, f in 0.0f64..20.0, seed in 0u64..300) {
        let q = TwoPriorityDes::with_rho(rho, Exponential::with_mean(0.3));
        let mut rng = seeded_rng(seed);
        prop_assert!(q.finishing_time(f, &mut rng) >= f);
    }

    #[test]
    fn expected_observation_matches_eq6(rho in 0.0f64..0.9, f in 0.0f64..100.0) {
        let m = Noise::Pareto { alpha: 1.7, rho };
        prop_assert!((m.expected(f) - f / (1.0 - rho)).abs() < 1e-9);
    }

    #[test]
    fn stream_seeds_injective_within_block(base in 0u64..u64::MAX / 2, a in 0u64..10_000, b in 0u64..10_000) {
        if a != b {
            prop_assert_ne!(stream_seed(base, a), stream_seed(base, b));
        }
    }

    #[test]
    fn batch_fill_matches_scalar_stream(seed in 0u64..2_000, n in 0usize..300) {
        // the batched hot path must consume the RNG exactly like the
        // scalar sampler: same draws, bit-identical outputs, and the
        // streams stay in lockstep afterwards
        fn check<D: Distribution>(d: &D, seed: u64, n: usize) -> Result<(), String> {
            let mut a = seeded_rng(seed);
            let mut b = seeded_rng(seed);
            let mut batch = vec![0.0; n];
            d.fill_samples(&mut a, &mut batch);
            for (i, &x) in batch.iter().enumerate() {
                let y = d.sample(&mut b);
                prop_assert_eq!(x.to_bits(), y.to_bits(), "sample {} diverged", i);
            }
            // post-batch draw parity: no extra/missing RNG consumption
            use rand::Rng as _;
            prop_assert_eq!(a.random::<u64>(), b.random::<u64>());
            Ok(())
        }
        check(&Pareto::new(1.7, 0.4), seed, n)?;
        check(&BoundedPareto::new(1.2, 0.3, 9.0), seed, n)?;
        check(&Exponential::with_mean(2.5), seed, n)?;
        check(&Gaussian::new(3.0, 1.5), seed, n)?;
        check(&LogNormal::new(0.2, 0.7), seed, n)?;
        check(&Weibull::new(1.4, 2.0), seed, n)?;
        check(&Uniform::new(-2.0, 5.0), seed, n)?;
    }

    #[test]
    fn batch_fill_matches_scalar_at_lane_boundaries(seed in 0u64..2_000) {
        // the wide-lane kernels chunk by LANES (8): pin bit-identity at
        // every boundary a chunked loop can get wrong — empty, partial
        // first chunk, exact multiples, and one past
        use harmony::variability::dist::LANES;
        fn check<D: Distribution>(d: &D, seed: u64, n: usize) -> Result<(), String> {
            let mut a = seeded_rng(seed);
            let mut b = seeded_rng(seed);
            let mut batch = vec![0.0_f64; n];
            d.fill_samples(&mut a, &mut batch);
            for (i, &x) in batch.iter().enumerate() {
                let y = d.sample(&mut b);
                prop_assert_eq!(x.to_bits(), y.to_bits(), "sample {}/{} diverged", i, n);
            }
            use rand::Rng as _;
            prop_assert_eq!(a.random::<u64>(), b.random::<u64>());
            Ok(())
        }
        for n in [0, 1, LANES - 1, LANES, LANES + 1, 4 * LANES, 4 * LANES + 3] {
            check(&Pareto::new(1.7, 0.4), seed, n)?;
            check(&Gaussian::new(3.0, 1.5), seed, n)?;
            check(&LogNormal::new(0.2, 0.7), seed, n)?;
            check(&Exponential::with_mean(2.5), seed, n)?;
        }
    }

    #[test]
    fn blocked_min_reduction_matches_sequential_fold(k in 1usize..200, f_v in 0.1f64..20.0, rho in 0.0f64..0.8, seed in 0u64..500) {
        // min_of_k's 8-lane blocked reduction relies on f64::min being
        // exactly associative/commutative on non-NaN values — it must
        // equal the plain left-to-right fold over the same stream
        let m = Noise::Pareto { alpha: 1.7, rho };
        let mut rng_a = seeded_rng(seed);
        let mut rng_b = seeded_rng(seed);
        let blocked = min_of_k(&m, f_v, k, &mut rng_a);
        let mut obs = vec![0.0; k];
        {
            use harmony::variability::noise::NoiseModel as _;
            // min_of_k draws in K_CHUNK batches internally; replicate the
            // stream with one bulk draw (proven equivalent above)
            m.observe_n(f_v, &mut rng_b, &mut obs);
        }
        let sequential = obs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(blocked.to_bits(), sequential.to_bits());
    }

    #[test]
    fn batch_observe_matches_scalar_stream(seed in 0u64..2_000, n in 0usize..200, rho in 0.01f64..0.8, f_v in 0.01f64..50.0) {
        use harmony::variability::noise::NoiseModel as _;
        for model in [
            Noise::None,
            Noise::Pareto { alpha: 1.7, rho },
            Noise::Exponential { rho },
            Noise::Gaussian { rho, cv: 0.4 },
            Noise::Spiky { rho },
        ] {
            let mut a = seeded_rng(seed);
            let mut b = seeded_rng(seed);
            let mut batch = vec![0.0; n];
            model.observe_n(f_v, &mut a, &mut batch);
            for &x in &batch {
                let y = model.observe(f_v, &mut b);
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{:?} diverged", model);
            }
            use rand::Rng as _;
            prop_assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }
}

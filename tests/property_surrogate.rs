//! Property suite for the TPE-style surrogate optimizer tier.
//!
//! Three invariants hold for *every* seed, space shape, and batch
//! history:
//!
//! * proposals are always admissible and never empty (the surrogate is
//!   budget-driven: empty-iff-finished with finished ≡ false);
//! * trajectories are pure functions of `(seed, observations)` — two
//!   instances fed identical estimates stay in lockstep forever;
//! * a checkpoint taken at *any* batch boundary restores into a fresh
//!   twin that reproduces the exact future, and re-saving the restored
//!   state reproduces the exact checkpoint bytes.
//!
//! CI runs this file at an elevated `PROPTEST_CASES` alongside the
//! recovery chaos step.

use harmony::prelude::*;
use harmony::recovery::{restore_from_slice, save_to_vec};
use proptest::prelude::*;

/// A mixed lattice/continuous space — stride, level, and continuous
/// axes all exercise distinct surrogate density estimators.
fn mixed_space() -> ParamSpace {
    ParamSpace::new(vec![
        ParamDef::integer("x", -12, 12, 1).unwrap(),
        ParamDef::integer("y", 0, 30, 3).unwrap(),
        ParamDef::levels("l", vec![1.0, 2.0, 5.0, 9.0]).unwrap(),
        ParamDef::continuous("z", -1.0, 1.0).unwrap(),
    ])
    .unwrap()
}

/// Deterministic pseudo-estimates: a bowl over the first two axes plus
/// a seed-hashed perturbation — no session machinery needed.
fn pseudo_values(batch: &[Point], seed: u64, round: usize) -> Vec<f64> {
    batch
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let cost = 1.0 + 0.1 * (p[0] * p[0] + p[1] * p[1]) + p[3].abs();
            let h = stream_seed(seed, (round * 131 + i) as u64) % 1_000;
            cost + h as f64 / 5_000.0
        })
        .collect()
}

proptest! {
    /// Every proposal is admissible and non-empty, through the startup
    /// phase, the startup→model transition, and deep into the model
    /// phase.
    #[test]
    fn proposals_admissible_and_never_empty(
        seed in 0u64..10_000,
        rounds in 1usize..8,
    ) {
        let space = mixed_space();
        let mut opt = SurrogateOptimizer::with_defaults(space.clone(), seed);
        for r in 0..rounds {
            let batch = opt.propose();
            prop_assert!(!batch.is_empty(), "round {} proposed nothing", r);
            prop_assert!(!opt.converged());
            for p in &batch {
                prop_assert!(space.is_admissible(p), "inadmissible point {:?}", p);
            }
            opt.observe(&pseudo_values(&batch, seed, r));
        }
    }

    /// Two instances with the same seed fed the same estimates stay in
    /// lockstep — the trajectory is a pure function of the seed and the
    /// observation stream.
    #[test]
    fn same_seed_same_observations_same_trajectory(
        seed in 0u64..10_000,
        rounds in 1usize..8,
    ) {
        let mut a = SurrogateOptimizer::with_defaults(mixed_space(), seed);
        let mut b = SurrogateOptimizer::with_defaults(mixed_space(), seed);
        for r in 0..rounds {
            let ba = a.propose();
            let bb = b.propose();
            prop_assert_eq!(&ba, &bb, "round {} diverged", r);
            let values = pseudo_values(&ba, seed, r);
            a.observe(&values);
            b.observe(&values);
        }
        prop_assert_eq!(a.recommendation(), b.recommendation());
    }

    /// A checkpoint at any batch boundary restores into a twin that
    /// reproduces the exact future, and the restored state re-saves to
    /// the exact same bytes.
    #[test]
    fn checkpoint_at_any_boundary_is_byte_identical(
        seed in 0u64..10_000,
        warm in 0usize..6,
    ) {
        let mut original = SurrogateOptimizer::with_defaults(mixed_space(), seed);
        for r in 0..warm {
            let batch = original.propose();
            original.observe(&pseudo_values(&batch, seed, r));
        }
        let bytes = save_to_vec(original.as_checkpoint().expect("surrogate is checkpointable"));
        let mut fresh = SurrogateOptimizer::with_defaults(mixed_space(), seed ^ 0xDEAD);
        restore_from_slice(
            fresh.as_checkpoint_mut().expect("surrogate is checkpointable"),
            &bytes,
        )
        .expect("checkpoint restores cleanly");
        prop_assert_eq!(
            save_to_vec(fresh.as_checkpoint().unwrap()),
            bytes,
            "re-saved state differs from the original checkpoint"
        );
        for b in 0..4 {
            let x = original.propose();
            let y = fresh.propose();
            prop_assert_eq!(&x, &y, "proposal {} diverged after restore", b);
            let values = pseudo_values(&x, seed, warm + b);
            original.observe(&values);
            fresh.observe(&values);
        }
        prop_assert_eq!(original.recommendation(), fresh.recommendation());
    }

    /// Partial batches with holes (lost reports) keep the surrogate
    /// proposing admissible, deterministic batches.
    #[test]
    fn partial_observations_keep_the_model_sound(
        seed in 0u64..10_000,
        hole_mask in 1u8..255,
    ) {
        let space = mixed_space();
        let mut opt = SurrogateOptimizer::with_defaults(space.clone(), seed);
        for r in 0..4 {
            let batch = opt.propose();
            let values = pseudo_values(&batch, seed, r);
            let partial: Vec<Option<f64>> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    // keep at least slot 0 measured (driver quorum rule)
                    if i > 0 && hole_mask & (1 << (i % 8)) != 0 {
                        None
                    } else {
                        Some(v)
                    }
                })
                .collect();
            opt.observe_partial(&partial);
            for p in &opt.propose() {
                prop_assert!(space.is_admissible(p));
            }
        }
    }
}

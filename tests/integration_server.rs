//! Integration tests of the threaded tuning server and the adaptive
//! tuner under edge-case configurations.

use harmony::core::adaptive::{AdaptiveSampling, AdaptiveTuner, AdaptiveTunerConfig};
use harmony::core::baselines::SimulatedAnnealing;
use harmony::prelude::*;

fn space() -> ParamSpace {
    ParamSpace::new(vec![
        ParamDef::integer("x", -12, 12, 1).unwrap(),
        ParamDef::integer("y", -12, 12, 1).unwrap(),
    ])
    .unwrap()
}

fn bowl() -> harmony::surface::objective::FnObjective<impl Fn(&Point) -> f64 + Sync> {
    harmony::surface::objective::FnObjective::new("bowl", space(), |p| {
        1.0 + 0.1 * (p[0] * p[0] + p[1] * p[1])
    })
}

#[test]
fn server_with_a_single_client() {
    // every batch serialises through one client thread
    let obj = bowl();
    let mut pro = ProOptimizer::with_defaults(space());
    let out = run_distributed(
        &obj,
        &Noise::None,
        &mut pro,
        ServerConfig::new(1, 60, Estimator::Single, 1).unwrap(),
    );
    assert_eq!(out.best_point.as_slice(), &[0.0, 0.0]);
    assert!(out.trace.len() >= 60);
}

#[test]
fn server_with_more_samples_than_clients() {
    // k=7 samples on 3 clients: slots spill across multiple steps
    let obj = bowl();
    let mut pro = ProOptimizer::with_defaults(space());
    let out = run_distributed(
        &obj,
        &Noise::paper_default(0.2),
        &mut pro,
        ServerConfig::new(3, 80, Estimator::MinOfK(7), 2).unwrap(),
    );
    assert!(out.best_true_cost < 3.0, "bt={}", out.best_true_cost);
    assert!(out.evaluations > 7 * 4, "evals={}", out.evaluations);
}

#[test]
fn server_fills_budget_for_non_converging_optimizers() {
    let obj = bowl();
    let mut sa = SimulatedAnnealing::new(space(), 2.0, 0.99, 3);
    let out = run_distributed(
        &obj,
        &Noise::None,
        &mut sa,
        ServerConfig::new(4, 50, Estimator::Single, 3).unwrap(),
    );
    assert!(!out.converged);
    assert!(out.trace.len() >= 50);
    assert!(out.best_true_cost.is_finite());
}

#[test]
fn server_matches_tuner_on_deterministic_problems() {
    // no noise: client threading must not change the algorithm's path
    let obj = bowl();
    let mut a = ProOptimizer::with_defaults(space());
    let server = run_distributed(
        &obj,
        &Noise::None,
        &mut a,
        ServerConfig::new(8, 100, Estimator::Single, 7).unwrap(),
    );
    let mut b = ProOptimizer::with_defaults(space());
    let tuner = OnlineTuner::new(TunerConfig {
        full_occupancy: false,
        ..TunerConfig::paper_default(100, Estimator::Single, 7)
    });
    let local = tuner.run(&obj, &Noise::None, &mut b).unwrap();
    assert_eq!(server.best_point, local.best_point);
    assert_eq!(server.best_true_cost, local.best_true_cost);
}

#[test]
fn adaptive_tuner_handles_tiny_clusters() {
    let obj = bowl();
    let tuner = AdaptiveTuner::new(AdaptiveTunerConfig {
        procs: 2,
        max_steps: 60,
        policy: AdaptiveSampling {
            min_k: 2,
            max_k: 4,
            patience: 1,
        },
        seed: 4,
        exploit_width: 2,
    });
    let mut pro = ProOptimizer::with_defaults(space());
    let out = tuner
        .run(&obj, &Noise::paper_default(0.3), &mut pro)
        .unwrap();
    assert!(out.trace.len() >= 60);
    assert!(out.best_true_cost < 5.0);
}

#[test]
fn adaptive_tuner_on_gs2_is_frugal() {
    let gs2 = Gs2Model::paper_scale();
    let noise = Noise::paper_default(0.2);
    let adaptive = AdaptiveTuner::new(AdaptiveTunerConfig {
        procs: 64,
        max_steps: 100,
        policy: AdaptiveSampling {
            min_k: 1,
            max_k: 5,
            patience: 2,
        },
        seed: 5,
        exploit_width: 6,
    });
    let mut a = ProOptimizer::with_defaults(gs2.space().clone());
    let out_a = adaptive.run(&gs2, &noise, &mut a).unwrap();

    // the adaptive session fills its budget, returns a sane config, and
    // respects the sampling cap (at most max_k rounds per consumed step
    // would be 6 evals per trace step for a 6-point batch; per-batch
    // frugality itself is covered by the policy unit tests)
    assert!(out_a.trace.len() >= 100);
    assert!(out_a.best_true_cost < 6.0, "bt={}", out_a.best_true_cost);
    assert!(
        out_a.evaluations <= out_a.trace.len() * 7,
        "evals={} steps={}",
        out_a.evaluations,
        out_a.trace.len()
    );
}

#[test]
fn hetero_cluster_slows_everything_by_the_straggler() {
    use harmony::cluster::{Cluster, Heterogeneity};
    let cluster = Cluster::new(16);
    let hetero = Heterogeneity::with_stragglers(16, 2, 2.5);
    let mut rng = seeded_rng(6);
    let mut trace = TuningTrace::new();
    cluster.run_fixed_hetero(2.0, 40, &hetero, &Noise::None, &mut rng, &mut trace);
    assert!(trace.step_times().iter().all(|&t| (t - 5.0).abs() < 1e-12));
    assert_eq!(hetero.barrier_factor(), 2.5);
}

//! Property-based tests of the parameter-space layer: the projection
//! operator, simplex transforms, and initial simplices must satisfy
//! their invariants for *arbitrary* admissible-region shapes.

use harmony::params::init::{initial_simplex, InitialShape};
use harmony::params::{ParamDef, ParamSpace, Point, Rounding, Simplex, StepKind};
use proptest::prelude::*;

/// Strategy: an arbitrary mixed parameter space of 1–4 dimensions.
fn arb_space() -> impl Strategy<Value = ParamSpace> {
    prop::collection::vec(arb_param(), 1..=4)
        .prop_map(|defs| ParamSpace::new(defs).expect("valid space"))
}

fn arb_param() -> impl Strategy<Value = ParamDef> {
    prop_oneof![
        // continuous
        (-100.0f64..100.0, 0.1f64..200.0).prop_map(|(lo, w)| {
            ParamDef::continuous("c", lo, lo + w).expect("valid continuous")
        }),
        // integer with step
        (-50i64..50, 1i64..40, 1i64..7).prop_map(|(lo, span, step)| {
            ParamDef::integer("i", lo, lo + span, step).expect("valid integer")
        }),
        // explicit levels
        prop::collection::btree_set(-1000i64..1000, 2..8).prop_map(|set| {
            let levels: Vec<f64> = set.into_iter().map(|v| v as f64).collect();
            ParamDef::levels("l", levels).expect("valid levels")
        }),
    ]
}

/// Strategy: a space plus a wild raw point of matching dimension.
fn space_and_point() -> impl Strategy<Value = (ParamSpace, Point)> {
    arb_space().prop_flat_map(|space| {
        let n = space.dims();
        (
            Just(space),
            prop::collection::vec(-1e4f64..1e4, n).prop_map(Point::new),
        )
    })
}

proptest! {
    #[test]
    fn projection_always_lands_admissible((space, raw) in space_and_point()) {
        let center = space.center();
        for rounding in [Rounding::TowardCenter, Rounding::Nearest] {
            let p = space.project(&raw, &center, rounding);
            prop_assert!(space.is_admissible(&p), "{raw:?} -> {p:?}");
        }
    }

    #[test]
    fn projection_is_idempotent((space, raw) in space_and_point()) {
        let center = space.center();
        let once = space.project(&raw, &center, Rounding::TowardCenter);
        let twice = space.project(&once, &center, Rounding::TowardCenter);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn admissible_points_are_fixed_points(space in arb_space(), u in prop::collection::vec(0.0f64..1.0, 4)) {
        let x = space.point_from_unit(&u[..space.dims()]);
        prop_assert!(space.is_admissible(&x));
        let center = space.center();
        let p = space.project(&x, &center, Rounding::TowardCenter);
        prop_assert_eq!(p, x);
    }

    #[test]
    fn center_is_admissible(space in arb_space()) {
        prop_assert!(space.is_admissible(&space.center()));
    }

    #[test]
    fn repeated_shrink_collapses_to_center((space, raw) in space_and_point()) {
        // §3.2.1's termination property: x <- Pi(0.5(x + c)) reaches c
        // in finitely many steps on any (projected) start
        let center = space.center();
        let mut x = space.project(&raw, &center, Rounding::TowardCenter);
        for _ in 0..200 {
            if x == center {
                break;
            }
            let mid = Point::affine(&[(0.5, &x), (0.5, &center)]);
            let next = space.project(&mid, &center, Rounding::TowardCenter);
            x = next;
        }
        // continuous coordinates converge geometrically, discrete ones
        // must land exactly
        for (i, p) in space.params().iter().enumerate() {
            if p.is_continuous() {
                prop_assert!((x[i] - center[i]).abs() <= 1e-6 * (1.0 + p.width()));
            } else {
                prop_assert_eq!(x[i], center[i], "axis {}", i);
            }
        }
    }

    #[test]
    fn reflection_is_an_involution(coords in prop::collection::vec(-100.0f64..100.0, 1..6),
                                   center in prop::collection::vec(-100.0f64..100.0, 6)) {
        let n = coords.len();
        let x = Point::new(coords);
        let c = Point::new(center[..n].to_vec());
        let back = x.reflect_through(&c).reflect_through(&c);
        prop_assert!(back.approx_eq(&x, 1e-9));
    }

    #[test]
    fn expansion_is_reflection_of_shrink_scaled(coords in prop::collection::vec(-50.0f64..50.0, 1..5),
                                                center in prop::collection::vec(-50.0f64..50.0, 5)) {
        // e = 3c - 2x and r = 2c - x satisfy e - c = 2(r - c)
        let n = coords.len();
        let x = Point::new(coords);
        let c = Point::new(center[..n].to_vec());
        let e = x.expand_through(&c);
        let r = x.reflect_through(&c);
        for i in 0..n {
            prop_assert!(((e[i] - c[i]) - 2.0 * (r[i] - c[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn initial_simplices_admissible_and_sized(space in arb_space(), r in 0.05f64..1.0) {
        for shape in [InitialShape::Minimal, InitialShape::Symmetric] {
            let s = initial_simplex(&space, shape, r).expect("initial simplex");
            let expected = match shape {
                InitialShape::Minimal => space.dims() + 1,
                InitialShape::Symmetric => 2 * space.dims(),
            };
            prop_assert_eq!(s.len(), expected);
            for v in s.vertices() {
                prop_assert!(space.is_admissible(v), "vertex {v:?}");
            }
        }
    }

    #[test]
    fn simplex_transforms_preserve_vertex_count(coords in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 3..7)) {
        let verts: Vec<Point> = coords.into_iter().map(Point::new).collect();
        let s = Simplex::new(verts).expect("valid simplex");
        for kind in [StepKind::Reflect, StepKind::Expand, StepKind::Shrink] {
            prop_assert_eq!(s.transform_around(0, kind).len(), s.len() - 1);
        }
    }

    #[test]
    fn probe_points_are_admissible_neighbors(space in arb_space(), u in prop::collection::vec(0.0f64..1.0, 4)) {
        let v0 = space.point_from_unit(&u[..space.dims()]);
        for probe in space.probe_points(&v0, 0.01) {
            prop_assert!(space.is_admissible(&probe));
            // differs from v0 in exactly one coordinate
            let diffs = (0..space.dims()).filter(|&i| probe[i] != v0[i]).count();
            prop_assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn lattice_iteration_matches_cardinality(space in arb_space()) {
        if let Some(n) = space.lattice_size() {
            if n <= 4096 {
                let pts: Vec<Point> = space.lattice().collect();
                prop_assert_eq!(pts.len(), n);
                for p in &pts {
                    prop_assert!(space.is_admissible(p));
                }
            }
        }
    }
}

//! End-to-end integration tests spanning all crates: objective →
//! database → noise → cluster → optimizer → outcome.

use harmony::prelude::*;

#[test]
fn full_paper_pipeline_on_gs2_database() {
    // §6 methodology: sparse database of the GS2 surface, PRO with
    // min-of-K sampling under Pareto noise
    let gs2 = Gs2Model::paper_scale();
    let mut rng = seeded_rng(1);
    let db = PerfDatabase::from_objective(&gs2, 0.7, 4, &mut rng);
    let noise = Noise::paper_default(0.2);

    let tuner = OnlineTuner::new(TunerConfig::paper_default(150, Estimator::MinOfK(3), 99));
    let mut pro = ProOptimizer::with_defaults(db.space().clone());
    let out = tuner.run(&db, &noise, &mut pro).unwrap();

    let (_, optimum) = best_on_lattice(&db).expect("discrete space");
    assert!(
        out.best_true_cost < 3.0 * optimum,
        "tuned {} vs optimum {optimum}",
        out.best_true_cost
    );
    assert!(out.trace.len() >= 150);
    assert!(out.total_time() > 0.0);
}

#[test]
fn min_estimator_dominates_mean_under_heavy_tails() {
    // the paper's central claim, across replications, on the real GS2
    // surface with alpha=1.1 noise (infinite mean)
    let gs2 = Gs2Model::paper_scale();
    let noise = Noise::Pareto {
        alpha: 1.1,
        rho: 0.3,
    };
    let avg_best = |est: Estimator| {
        let reps = 12;
        (0..reps)
            .map(|r| {
                let tuner =
                    OnlineTuner::new(TunerConfig::paper_default(120, est, stream_seed(5, r)));
                let mut pro = ProOptimizer::with_defaults(gs2.space().clone());
                tuner.run(&gs2, &noise, &mut pro).unwrap().best_true_cost
            })
            .sum::<f64>()
            / reps as f64
    };
    let min3 = avg_best(Estimator::MinOfK(3));
    let mean3 = avg_best(Estimator::MeanOfK(3));
    assert!(
        min3 < mean3 * 1.05,
        "min3 = {min3} should not lose to mean3 = {mean3}"
    );
}

#[test]
fn sequential_and_distributed_agree_without_noise() {
    // same optimizer family, no noise: both drivers must find the same
    // optimal configuration of the GS2 surface
    let gs2 = Gs2Model::paper_scale();

    let tuner = OnlineTuner::new(TunerConfig::paper_default(200, Estimator::Single, 3));
    let mut a = ProOptimizer::with_defaults(gs2.space().clone());
    let seq = tuner.run(&gs2, &Noise::None, &mut a).unwrap();

    let mut b = ProOptimizer::with_defaults(gs2.space().clone());
    let dist = run_distributed(
        &gs2,
        &Noise::None,
        &mut b,
        ServerConfig::new(8, 200, Estimator::Single, 3).unwrap(),
    );

    // deterministic objective + deterministic PRO: identical best points
    assert_eq!(seq.best_point, dist.best_point);
    assert_eq!(seq.best_true_cost, dist.best_true_cost);
}

#[test]
fn all_optimizers_run_on_the_same_problem() {
    use harmony::core::baselines::{GeneticAlgorithm, RandomSearch, SimulatedAnnealing};
    use harmony::core::nelder_mead::NelderMead;
    use harmony::core::sro::SroOptimizer;

    let gs2 = Gs2Model::paper_scale();
    let noise = Noise::paper_default(0.1);
    let space = gs2.space().clone();
    let mut opts: Vec<Box<dyn Optimizer>> = vec![
        Box::new(ProOptimizer::with_defaults(space.clone())),
        Box::new(SroOptimizer::with_defaults(space.clone())),
        Box::new(NelderMead::with_defaults(space.clone())),
        Box::new(RandomSearch::new(space.clone(), 6, 1)),
        Box::new(SimulatedAnnealing::new(space.clone(), 2.0, 0.99, 1)),
        Box::new(GeneticAlgorithm::new(space, 12, 0.4, 1)),
    ];
    for opt in &mut opts {
        let tuner = OnlineTuner::new(TunerConfig::paper_default(80, Estimator::Single, 17));
        let out = tuner.run(&gs2, &noise, opt.as_mut()).unwrap();
        assert!(
            out.best_true_cost.is_finite() && out.best_true_cost > 0.0,
            "{} produced nonsense",
            opt.name()
        );
        assert!(out.trace.len() >= 80, "{} under-ran the budget", opt.name());
    }
}

#[test]
fn ntt_makes_different_rho_comparable() {
    // eq. 23: NTT = (1-rho)*Total_Time compensates E[y] = f/(1-rho).
    // That identity concerns a single observation per step, so this
    // test runs without full SPMD occupancy (where T_k is a max over
    // P draws and scales differently).
    let gs2 = Gs2Model::paper_scale();
    let run_at = |rho: f64| {
        let noise = if rho == 0.0 {
            Noise::None
        } else {
            Noise::Exponential { rho } // light tail: E[y] = f/(1-rho) exactly
        };
        let reps = 10;
        (0..reps)
            .map(|r| {
                let tuner = OnlineTuner::new(TunerConfig {
                    full_occupancy: false,
                    ..TunerConfig::paper_default(100, Estimator::Single, stream_seed(23, r))
                });
                let mut pro = ProOptimizer::with_defaults(gs2.space().clone());
                tuner.run(&gs2, &noise, &mut pro).unwrap().ntt(rho)
            })
            .sum::<f64>()
            / reps as f64
    };
    let ntt0 = run_at(0.0);
    let ntt03 = run_at(0.3);
    // same order of magnitude (noise changes the search path, so exact
    // equality is not expected)
    assert!(
        (ntt03 / ntt0) < 2.0 && (ntt03 / ntt0) > 0.5,
        "ntt0={ntt0} ntt03={ntt03}"
    );
}

#[test]
fn trace_analysis_pipeline_is_heavy_tailed() {
    use harmony::stats::tail::classify_tail;
    use harmony::variability::trace::ClusterTraceModel;

    let samples = ClusterTraceModel::gs2_like(32, 600).generate(4).flatten();
    let verdict = classify_tail(&samples, 0.15);
    assert!(verdict.alpha > 0.0, "{verdict:?}");
    let hist = Histogram::from_samples(&samples, 15);
    assert!(hist.tail_mass(3) > 0.0);
}

//! Chaos suite: property-based tests of the fault-tolerant server.
//!
//! The resilient server is *deterministic by construction* — fault
//! decisions are pure hashes of `(plan seed, client, task serial)` and
//! time is logical, so the same seed and the same [`FaultPlan`] must
//! reproduce the same [`TuningOutcome`] bit for bit regardless of
//! thread scheduling. These tests replay whole sessions to enforce
//! that, plus the ISSUE acceptance bound: a session losing a quarter of
//! its clients and 10% of its reports still tunes GS2 to within 2× of
//! the fault-free best true cost.
//!
//! CI runs this file with an elevated `PROPTEST_CASES` as the chaos
//! step.

use harmony::core::{restarting_pro, run_session_traced};
use harmony::prelude::*;
use harmony::recovery::{restore_from_slice, save_to_vec};
use harmony::surface::objective::FnObjective;
use proptest::prelude::*;

fn space() -> ParamSpace {
    ParamSpace::new(vec![
        ParamDef::integer("x", -12, 12, 1).unwrap(),
        ParamDef::integer("y", -12, 12, 1).unwrap(),
    ])
    .unwrap()
}

fn bowl() -> FnObjective<impl Fn(&Point) -> f64 + Sync> {
    FnObjective::new("bowl", space(), |p| 1.0 + 0.1 * (p[0] * p[0] + p[1] * p[1]))
}

fn session(
    seed: u64,
    procs: usize,
    steps: usize,
    plan: &FaultPlan,
) -> Result<TuningOutcome, ServerError> {
    let obj = bowl();
    let mut pro = ProOptimizer::with_defaults(space());
    let cfg = ServerConfig::new(procs, steps, Estimator::Single, seed).unwrap();
    run_resilient(&obj, &Noise::paper_default(0.2), &mut pro, cfg, plan)
}

/// [`session`] through a flight recorder: returns the outcome plus
/// whatever post-mortems the recorder dumped.
fn session_with_flight_recorder(
    seed: u64,
    procs: usize,
    steps: usize,
    plan: &FaultPlan,
) -> (
    Result<TuningOutcome, ServerError>,
    Vec<harmony::telemetry::PostMortem>,
) {
    let obj = bowl();
    let mut pro = ProOptimizer::with_defaults(space());
    let cfg = ServerConfig::new(procs, steps, Estimator::Single, seed).unwrap();
    let recorder = std::sync::Arc::new(FlightRecorder::new(64));
    let tel = Telemetry::with_config(recorder.clone(), TelemetryConfig::default());
    let out = harmony::core::server::run_resilient_traced(
        &obj,
        &Noise::paper_default(0.2),
        &mut pro,
        cfg,
        plan,
        &tel,
    );
    (out, recorder.take_post_mortems())
}

/// Deterministic pseudo-observations: the bowl cost plus a small
/// seed-hashed perturbation — interesting optimizer trajectories, exact
/// reproducibility, no session machinery needed.
fn pseudo_values(batch: &[Point], seed: u64, round: usize) -> Vec<f64> {
    batch
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let cost = 1.0 + 0.1 * (p[0] * p[0] + p[1] * p[1]);
            let h = stream_seed(seed, (round * 131 + i) as u64) % 1_000;
            cost + h as f64 / 5_000.0
        })
        .collect()
}

/// Advances an optimizer through `batches` ask/tell rounds.
fn drive(opt: &mut dyn Optimizer, seed: u64, from: usize, batches: usize) {
    for b in 0..batches {
        let batch = opt.propose();
        if batch.is_empty() {
            return;
        }
        let values = pseudo_values(&batch, seed, from + b);
        opt.observe(&values);
    }
}

proptest! {
    /// Same seed + same fault plan ⇒ bit-identical outcome (Ok or Err).
    #[test]
    fn replay_is_bit_identical(
        seed in 0u64..2_000,
        plan_seed in 0u64..2_000,
        procs in 2usize..9,
        crash in 0.0f64..0.6,
        hang in 0.0f64..0.3,
        dup in 0.0f64..0.2,
    ) {
        let plan = FaultPlan::new(plan_seed, crash, hang, hang, dup);
        let a = session(seed, procs, 25, &plan);
        let b = session(seed, procs, 25, &plan);
        prop_assert_eq!(a, b);
    }

    /// A fault-free plan reproduces the plain distributed path exactly.
    #[test]
    fn fault_free_plan_matches_run_distributed(
        seed in 0u64..2_000,
        procs in 1usize..9,
    ) {
        let resilient = session(seed, procs, 30, &FaultPlan::none()).unwrap();
        let obj = bowl();
        let mut pro = ProOptimizer::with_defaults(space());
        let cfg = ServerConfig::new(procs, 30, Estimator::Single, seed).unwrap();
        let plain = run_distributed(&obj, &Noise::paper_default(0.2), &mut pro, cfg);
        prop_assert_eq!(&resilient, &plain);
        prop_assert!(resilient.faults.is_clean());
    }

    /// Journalled sessions resume bit-identically from a kill at *any*
    /// batch boundary — including failed sessions, which must fail the
    /// same way again — under arbitrary fault plans and snapshot
    /// cadences.
    #[test]
    fn resume_after_random_kill_is_bit_identical(
        seed in 0u64..2_000,
        plan_seed in 0u64..2_000,
        procs in 2usize..9,
        crash in 0.0f64..0.4,
        kill_frac in 0.0f64..1.0,
        snap in 0u64..4,
    ) {
        let plan = FaultPlan::new(plan_seed, crash, 0.0, crash * 0.6, 0.0);
        let obj = bowl();
        let noise = Noise::paper_default(0.2);
        let cfg = ServerConfig::new(procs, 25, Estimator::Single, seed).unwrap();
        let recovery = RecoveryConfig { snapshot_every: snap };

        let mut journal = SessionJournal::in_memory();
        let mut pro = ProOptimizer::with_defaults(space());
        let full = run_recoverable(&obj, &noise, &mut pro, cfg, &plan, &mut journal, recovery);

        let records = journal.wal_lines().unwrap().len().saturating_sub(1);
        let kill = ((records as f64) * kill_frac) as usize;
        let mut part = journal.clone();
        part.truncate_records(kill).unwrap();
        let mut pro2 = ProOptimizer::with_defaults(space());
        let resumed = run_recoverable(&obj, &noise, &mut pro2, cfg, &plan, &mut part, recovery);
        prop_assert_eq!(full, resumed);
    }

    /// Checkpoint round-trip identity for every optimizer: saving after
    /// a few warm-up batches and restoring into a freshly constructed
    /// twin reproduces the exact future (proposals, observations,
    /// recommendation).
    #[test]
    fn checkpoint_roundtrip_preserves_optimizer_future(
        seed in 0u64..5_000,
        warm in 1usize..8,
        which in 0usize..5,
    ) {
        let make = |which: usize| -> Box<dyn Optimizer> {
            match which {
                0 => Box::new(ProOptimizer::with_defaults(space())),
                1 => Box::new(SroOptimizer::with_defaults(space())),
                2 => Box::new(NelderMead::with_defaults(space())),
                3 => Box::new(SurrogateOptimizer::with_defaults(space(), seed)),
                _ => Box::new(restarting_pro(space(), ProConfig::default(), 3, seed)),
            }
        };
        let mut original = make(which);
        let mut fresh = make(which);

        drive(original.as_mut(), seed, 0, warm);
        let bytes = save_to_vec(original.as_checkpoint().expect("optimizer is checkpointable"));
        restore_from_slice(
            fresh.as_checkpoint_mut().expect("optimizer is checkpointable"),
            &bytes,
        )
        .expect("checkpoint restores cleanly");

        for b in 0..6 {
            let a = original.propose();
            let z = fresh.propose();
            prop_assert_eq!(&a, &z, "proposal {} diverged", b);
            if a.is_empty() {
                break;
            }
            let values = pseudo_values(&a, seed, warm + b);
            original.observe(&values);
            fresh.observe(&values);
        }
        prop_assert_eq!(original.recommendation(), fresh.recommendation());
        prop_assert_eq!(original.converged(), fresh.converged());
    }

    /// Supervised sessions are as deterministic as plain ones: same
    /// seed + plan + supervisor config ⇒ bit-identical outcome and
    /// supervisor report (Ok or Err).
    #[test]
    fn supervised_replay_is_bit_identical(
        seed in 0u64..2_000,
        plan_seed in 0u64..2_000,
        procs in 2usize..9,
        hang in 0.0f64..0.5,
        drop in 0.0f64..0.4,
    ) {
        let plan = FaultPlan::new(plan_seed, 0.0, hang, drop, 0.0);
        let obj = bowl();
        let noise = Noise::paper_default(0.2);
        let cfg = ServerConfig::new(procs, 25, Estimator::Single, seed).unwrap();
        let run = || {
            let mut pro = ProOptimizer::with_defaults(space());
            run_supervised(&obj, &noise, &mut pro, cfg, &plan, SupervisorConfig::default())
        };
        prop_assert_eq!(run(), run());
    }

    /// Killing every client is a typed error, never a hang or a panic.
    /// The budget (250 steps) comfortably exceeds the worst case in
    /// which every client survives to the crash-serial horizon, so the
    /// session cannot finish before the fleet is gone. Depending on when
    /// the deaths land, the server reports either the empty fleet or a
    /// batch that lost its quorum to the abandoned slots. Either way the
    /// flight recorder must dump a readable post-mortem naming the
    /// terminal event.
    #[test]
    fn total_crash_is_a_typed_error(
        seed in 0u64..2_000,
        plan_seed in 0u64..2_000,
        procs in 1usize..7,
    ) {
        let plan = FaultPlan::new(plan_seed, 1.0, 0.0, 0.0, 0.0);
        let (out, post_mortems) = session_with_flight_recorder(seed, procs, 250, &plan);
        let expected_event = match out {
            Err(ServerError::AllClientsDead { .. }) => "server.all_dead",
            Err(ServerError::QuorumNotReached { .. }) => "server.quorum_fail",
            other => return Err(format!("expected a fleet-death error, got {other:?}")),
        };
        prop_assert!(!post_mortems.is_empty(), "injected failure left no post-mortem");
        prop_assert_eq!(&post_mortems[0].reason, expected_event);
        prop_assert!(post_mortems[0].text.contains("-- metrics --"));
    }
}

/// ISSUE acceptance: exhaustive kill-point sweep. A journaled,
/// supervised, traced session killed after *every* WAL record resumes to
/// a byte-identical outcome, supervisor report, and telemetry stream
/// (WAL-only mode re-emits the full trace).
#[test]
fn every_kill_point_resumes_byte_identically_with_supervision() {
    let obj = bowl();
    let noise = Noise::paper_default(0.2);
    let cfg = ServerConfig::new(6, 30, Estimator::Single, 2005).unwrap();
    let plan = FaultPlan::new(41, 0.2, 0.15, 0.1, 0.05);
    let sup = SupervisorConfig::default();

    let run = |journal: &mut SessionJournal| {
        let (tel, sink) = Telemetry::memory();
        let mut pro = ProOptimizer::with_defaults(space());
        let out = run_session_traced(
            &obj,
            &noise,
            &mut pro,
            cfg,
            &plan,
            &tel,
            Some(journal),
            RecoveryConfig::default(),
            Some(sup),
        );
        (out, sink.take())
    };

    let mut journal = SessionJournal::in_memory();
    let (full, full_trace) = run(&mut journal);
    let records = journal.wal_lines().unwrap().len() - 1;
    assert!(records > 3, "session committed only {records} records");
    for kill in 0..=records {
        let mut part = journal.clone();
        part.truncate_records(kill).unwrap();
        let (resumed, resumed_trace) = run(&mut part);
        assert_eq!(full, resumed, "kill after record {kill}");
        assert_eq!(full_trace, resumed_trace, "telemetry after record {kill}");
    }
}

/// The surrogate tier goes through the same kill matrix as PRO: a
/// journaled, supervised, traced session killed after *every* WAL
/// record resumes to a byte-identical outcome, supervisor report, and
/// telemetry stream.
#[test]
fn surrogate_kill_matrix_resumes_byte_identically() {
    let obj = bowl();
    let noise = Noise::paper_default(0.2);
    let cfg = ServerConfig::new(6, 30, Estimator::Single, 2005).unwrap();
    let plan = FaultPlan::new(41, 0.2, 0.15, 0.1, 0.05);
    let sup = SupervisorConfig::default();

    let run = |journal: &mut SessionJournal| {
        let (tel, sink) = Telemetry::memory();
        let mut opt = SurrogateOptimizer::with_defaults(space(), 2005);
        let out = run_session_traced(
            &obj,
            &noise,
            &mut opt,
            cfg,
            &plan,
            &tel,
            Some(journal),
            RecoveryConfig::default(),
            Some(sup),
        );
        (out, sink.take())
    };

    let mut journal = SessionJournal::in_memory();
    let (full, full_trace) = run(&mut journal);
    let records = journal.wal_lines().unwrap().len() - 1;
    assert!(records > 3, "session committed only {records} records");
    for kill in 0..=records {
        let mut part = journal.clone();
        part.truncate_records(kill).unwrap();
        let (resumed, resumed_trace) = run(&mut part);
        assert_eq!(full, resumed, "kill after record {kill}");
        assert_eq!(full_trace, resumed_trace, "telemetry after record {kill}");
    }
}

/// ISSUE acceptance: 25% crashes + 10% hangs on GS2 still terminates
/// `Ok` with a best true cost within 2× of the fault-free session.
#[test]
fn gs2_survives_quarter_crashes_within_2x() {
    let gs2 = Gs2Model::paper_scale();
    let noise = Noise::paper_default(0.1);
    let run = |plan: &FaultPlan| {
        let mut pro = ProOptimizer::with_defaults(gs2.space().clone());
        let cfg = ServerConfig::new(16, 60, Estimator::Single, 2005).unwrap();
        run_resilient(&gs2, &noise, &mut pro, cfg, plan)
    };
    let clean = run(&FaultPlan::none()).expect("fault-free session terminates");
    let faulty =
        run(&FaultPlan::new(99, 0.25, 0.10, 0.10, 0.05)).expect("faulty session still terminates");
    assert!(
        faulty.faults.evicted_clients > 0,
        "plan injected no crashes"
    );
    assert!(
        faulty.best_true_cost <= 2.0 * clean.best_true_cost,
        "faulty best {} vs clean best {}",
        faulty.best_true_cost,
        clean.best_true_cost
    );
}

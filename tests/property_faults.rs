//! Chaos suite: property-based tests of the fault-tolerant server.
//!
//! The resilient server is *deterministic by construction* — fault
//! decisions are pure hashes of `(plan seed, client, task serial)` and
//! time is logical, so the same seed and the same [`FaultPlan`] must
//! reproduce the same [`TuningOutcome`] bit for bit regardless of
//! thread scheduling. These tests replay whole sessions to enforce
//! that, plus the ISSUE acceptance bound: a session losing a quarter of
//! its clients and 10% of its reports still tunes GS2 to within 2× of
//! the fault-free best true cost.
//!
//! CI runs this file with an elevated `PROPTEST_CASES` as the chaos
//! step.

use harmony::prelude::*;
use harmony::surface::objective::FnObjective;
use proptest::prelude::*;

fn space() -> ParamSpace {
    ParamSpace::new(vec![
        ParamDef::integer("x", -12, 12, 1).unwrap(),
        ParamDef::integer("y", -12, 12, 1).unwrap(),
    ])
    .unwrap()
}

fn bowl() -> FnObjective<impl Fn(&Point) -> f64 + Sync> {
    FnObjective::new("bowl", space(), |p| 1.0 + 0.1 * (p[0] * p[0] + p[1] * p[1]))
}

fn session(
    seed: u64,
    procs: usize,
    steps: usize,
    plan: &FaultPlan,
) -> Result<TuningOutcome, ServerError> {
    let obj = bowl();
    let mut pro = ProOptimizer::with_defaults(space());
    let cfg = ServerConfig::new(procs, steps, Estimator::Single, seed).unwrap();
    run_resilient(&obj, &Noise::paper_default(0.2), &mut pro, cfg, plan)
}

proptest! {
    /// Same seed + same fault plan ⇒ bit-identical outcome (Ok or Err).
    #[test]
    fn replay_is_bit_identical(
        seed in 0u64..2_000,
        plan_seed in 0u64..2_000,
        procs in 2usize..9,
        crash in 0.0f64..0.6,
        hang in 0.0f64..0.3,
        dup in 0.0f64..0.2,
    ) {
        let plan = FaultPlan::new(plan_seed, crash, hang, hang, dup);
        let a = session(seed, procs, 25, &plan);
        let b = session(seed, procs, 25, &plan);
        prop_assert_eq!(a, b);
    }

    /// A fault-free plan reproduces the plain distributed path exactly.
    #[test]
    fn fault_free_plan_matches_run_distributed(
        seed in 0u64..2_000,
        procs in 1usize..9,
    ) {
        let resilient = session(seed, procs, 30, &FaultPlan::none()).unwrap();
        let obj = bowl();
        let mut pro = ProOptimizer::with_defaults(space());
        let cfg = ServerConfig::new(procs, 30, Estimator::Single, seed).unwrap();
        let plain = run_distributed(&obj, &Noise::paper_default(0.2), &mut pro, cfg);
        prop_assert_eq!(&resilient, &plain);
        prop_assert!(resilient.faults.is_clean());
    }

    /// Killing every client is a typed error, never a hang or a panic.
    /// The budget (250 steps) comfortably exceeds the worst case in
    /// which every client survives to the crash-serial horizon, so the
    /// session cannot finish before the fleet is gone. Depending on when
    /// the deaths land, the server reports either the empty fleet or a
    /// batch that lost its quorum to the abandoned slots.
    #[test]
    fn total_crash_is_a_typed_error(
        seed in 0u64..2_000,
        plan_seed in 0u64..2_000,
        procs in 1usize..7,
    ) {
        let plan = FaultPlan::new(plan_seed, 1.0, 0.0, 0.0, 0.0);
        match session(seed, procs, 250, &plan) {
            Err(ServerError::AllClientsDead { .. })
            | Err(ServerError::QuorumNotReached { .. }) => {}
            other => prop_assert!(false, "expected a fleet-death error, got {other:?}"),
        }
    }
}

/// ISSUE acceptance: 25% crashes + 10% hangs on GS2 still terminates
/// `Ok` with a best true cost within 2× of the fault-free session.
#[test]
fn gs2_survives_quarter_crashes_within_2x() {
    let gs2 = Gs2Model::paper_scale();
    let noise = Noise::paper_default(0.1);
    let run = |plan: &FaultPlan| {
        let mut pro = ProOptimizer::with_defaults(gs2.space().clone());
        let cfg = ServerConfig::new(16, 60, Estimator::Single, 2005).unwrap();
        run_resilient(&gs2, &noise, &mut pro, cfg, plan)
    };
    let clean = run(&FaultPlan::none()).expect("fault-free session terminates");
    let faulty =
        run(&FaultPlan::new(99, 0.25, 0.10, 0.10, 0.05)).expect("faulty session still terminates");
    assert!(
        faulty.faults.evicted_clients > 0,
        "plan injected no crashes"
    );
    assert!(
        faulty.best_true_cost <= 2.0 * clean.best_true_cost,
        "faulty best {} vs clean best {}",
        faulty.best_true_cost,
        clean.best_true_cost
    );
}

//! Property-based tests of the statistics layer.

use harmony::prelude::*;
use harmony::stats::tail::{linear_fit, truncate};
use proptest::prelude::*;

fn sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 1..200)
}

proptest! {
    #[test]
    fn summary_quantiles_bounded_by_extremes(xs in sample(), q in 0.0f64..=1.0) {
        let s = Summary::of(&xs);
        let v = s.quantile(q);
        prop_assert!(v >= s.min() - 1e-9 && v <= s.max() + 1e-9);
        prop_assert!(s.min() <= s.mean() && s.mean() <= s.max());
        prop_assert!(s.variance() >= 0.0);
    }

    #[test]
    fn summary_quantile_monotone(xs in sample(), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let s = Summary::of(&xs);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(s.quantile(lo) <= s.quantile(hi) + 1e-9);
    }

    #[test]
    fn ecdf_is_monotone_step_function(xs in sample(), probes in prop::collection::vec(-1e3f64..1e3, 2..20)) {
        let e = Ecdf::new(&xs);
        let mut sorted_probes = probes;
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for p in sorted_probes {
            let c = e.cdf(p);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-12);
            prop_assert!((e.survival(p) - (1.0 - c)).abs() < 1e-12);
            prev = c;
        }
    }

    #[test]
    fn ecdf_at_extremes(xs in sample()) {
        let e = Ecdf::new(&xs);
        let s = Summary::of(&xs);
        prop_assert_eq!(e.cdf(s.max()), 1.0);
        prop_assert_eq!(e.cdf(s.min() - 1.0), 0.0);
    }

    #[test]
    fn histogram_mass_is_a_distribution(xs in sample(), bins in 1usize..30) {
        let h = Histogram::from_samples(&xs, bins);
        let mass = h.mass();
        prop_assert!((mass.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(mass.iter().all(|&m| m >= 0.0));
        prop_assert_eq!(h.counts().iter().sum::<usize>(), xs.len());
    }

    #[test]
    fn truncation_is_a_filter(xs in sample(), cutoff in -1e3f64..1e3) {
        let t = truncate(&xs, cutoff);
        prop_assert!(t.iter().all(|&x| x <= cutoff));
        prop_assert_eq!(t.len(), xs.iter().filter(|&&x| x <= cutoff).count());
    }

    #[test]
    fn linear_fit_recovers_exact_lines(slope in -100.0f64..100.0, intercept in -100.0f64..100.0,
                                       n in 3usize..40) {
        let pts: Vec<(f64, f64)> = (0..n).map(|i| {
            let x = i as f64;
            (x, slope * x + intercept)
        }).collect();
        let fit = linear_fit(&pts);
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
    }

    #[test]
    fn min_survival_decreases_in_k_and_z(alpha in 0.3f64..3.0, beta in 0.1f64..10.0,
                                         k in 1usize..10, dz in 0.01f64..50.0) {
        use harmony::stats::minop::min_survival;
        let z = beta + dz;
        let s_k = min_survival(alpha, beta, k, 0.0, z);
        let s_k1 = min_survival(alpha, beta, k + 1, 0.0, z);
        prop_assert!(s_k1 <= s_k + 1e-12);
        let s_far = min_survival(alpha, beta, k, 0.0, z + 1.0);
        prop_assert!(s_far <= s_k + 1e-12);
        prop_assert!((0.0..=1.0).contains(&s_k));
    }

    #[test]
    fn required_samples_really_suffices(alpha in 0.5f64..3.0, beta in 0.1f64..10.0,
                                        lambda in 0.01f64..5.0, eps in 0.001f64..0.5) {
        use harmony::stats::minop::{overshoot_probability, required_samples};
        let k0 = required_samples(alpha, beta, lambda, eps);
        prop_assert!(overshoot_probability(alpha, beta, k0, lambda) < eps);
    }
}

//! Property-based tests of the objective layer: cost models must be
//! positive, finite, and deterministic everywhere; the database
//! interpolator must stay within the convex hull of its data; the
//! measurement-band compression must never reorder configurations.

use harmony::prelude::*;
use harmony::surface::{PerfDatabase, StencilHalo, TiledMatMul};
use proptest::prelude::*;
use rand::Rng;

fn unit_coords() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 3)
}

proptest! {
    #[test]
    fn gs2_is_positive_finite_deterministic(u in unit_coords()) {
        let m = Gs2Model::paper_scale();
        let p = m.space().point_from_unit(&u);
        let v = m.eval(&p);
        prop_assert!(v.is_finite() && v > 0.0, "f({p:?}) = {v}");
        prop_assert_eq!(v, m.eval(&p));
    }

    #[test]
    fn kernel_models_are_positive_finite(u in unit_coords()) {
        let mm = TiledMatMul::default_scale();
        let p = mm.space().point_from_unit(&u);
        let v = mm.eval(&p);
        prop_assert!(v.is_finite() && v > 0.0);
        let st = StencilHalo::default_scale();
        let q = st.space().point_from_unit(&u);
        let w = st.eval(&q);
        prop_assert!(w.is_finite() && w > 0.0);
    }

    #[test]
    fn compression_is_monotone(a in 0.01f64..300.0, b in 0.01f64..300.0) {
        let m = Gs2Model::paper_scale();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.compress(lo) <= m.compress(hi) + 1e-12);
        // and continuous across the knee
        let eps = 1e-6;
        let below = m.compress(m.compress_knee - eps);
        let above = m.compress(m.compress_knee + eps);
        prop_assert!((below - above).abs() < 1e-3);
    }

    #[test]
    fn database_interpolation_stays_in_hull(
        u in unit_coords(),
        keep in 0.3f64..1.0,
        seed in 0u64..200,
    ) {
        let gs2 = Gs2Model::paper_scale();
        let mut rng = seeded_rng(seed);
        let db = PerfDatabase::from_objective(&gs2, keep, 4, &mut rng);
        let p = db.space().point_from_unit(&u);
        let v = db.eval(&p);
        // interpolation is a convex combination of stored values
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for q in gs2.space().lattice() {
            let w = gs2.eval(&q);
            lo = lo.min(w);
            hi = hi.max(w);
        }
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "v={v} outside [{lo}, {hi}]");
    }

    #[test]
    fn full_database_is_exact(u in unit_coords()) {
        let gs2 = Gs2Model::paper_scale();
        let mut rng = seeded_rng(1);
        let db = PerfDatabase::from_objective(&gs2, 1.0, 4, &mut rng);
        let p = gs2.space().point_from_unit(&u);
        prop_assert_eq!(db.eval(&p), gs2.eval(&p));
    }

    #[test]
    fn indexed_interpolation_matches_scan_exactly(
        defs in prop::collection::vec((-20i64..20, 1i64..12, 1i64..4), 1..4),
        keep in 0.05f64..1.0,
        k in 1usize..8,
        seed in 0u64..300,
    ) {
        // random anisotropic integer spaces (widths differ per dim), a
        // random sparse subset stored, k possibly exceeding the entry
        // count: the bucket-grid path must agree with the brute-force
        // linear scan bit for bit, including on repeat (memoized) calls
        let space = ParamSpace::new(
            defs.iter()
                .enumerate()
                .map(|(i, &(lo, span, step))| {
                    ParamDef::integer(format!("p{i}"), lo, lo + span, step).unwrap()
                })
                .collect(),
        )
        .unwrap();
        let mut rng = seeded_rng(seed);
        let mut db = PerfDatabase::new(space.clone(), k);
        for (i, p) in space.lattice().enumerate() {
            if i == 0 || rng.random::<f64>() < keep {
                db.insert(p, rng.random::<f64>() * 100.0 + 0.1);
            }
        }
        for _ in 0..20 {
            let u: Vec<f64> = (0..space.dims()).map(|_| rng.random::<f64>()).collect();
            let q = space.point_from_unit(&u);
            let scan = db.interpolate_scan(&q);
            prop_assert_eq!(db.interpolate(&q).to_bits(), scan.to_bits(), "at {:?}", &q);
            // second call exercises the memo
            prop_assert_eq!(db.interpolate(&q).to_bits(), scan.to_bits());
        }
    }

    #[test]
    fn subcycle_factor_decreases_with_resolution(
        nt in 0usize..14,
        ne in 0usize..11,
    ) {
        // finer grids never increase the sub-cycling factor
        let m = Gs2Model::paper_scale();
        let sp = m.space();
        let p_coarse = Point::from(
            &[sp.param(0).level(nt), sp.param(1).level(ne), 16.0][..],
        );
        let p_finer = Point::from(
            &[sp.param(0).level(nt + 1), sp.param(1).level(ne + 1), 16.0][..],
        );
        prop_assert!(m.subcycle_factor(&p_finer) <= m.subcycle_factor(&p_coarse));
    }
}

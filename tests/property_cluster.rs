//! Property-based tests of the cluster layer (scheduling, execution,
//! heterogeneity) and of the parameter-spec parser round-trip.

use harmony::cluster::pool::{par_map_indexed, par_map_indexed_in, par_map_reduce_in, par_mean_in};
use harmony::cluster::{Cluster, Heterogeneity, SamplingMode, Schedule, TuningTrace};
use harmony::params::spec::{format_space, parse_space};
use harmony::params::{ParamDef, ParamSpace};
use harmony::prelude::*;
use proptest::prelude::*;
use rand::Rng;

fn arb_mode() -> impl Strategy<Value = SamplingMode> {
    prop_oneof![
        Just(SamplingMode::SequentialSteps),
        Just(SamplingMode::Packed)
    ]
}

proptest! {
    #[test]
    fn schedule_covers_every_pair_exactly_once(
        n in 1usize..20,
        k in 1usize..8,
        procs in 1usize..70,
        mode in arb_mode(),
    ) {
        let s = Schedule::plan(n, k, procs, mode);
        prop_assert_eq!(s.n_evals(), n * k);
        let mut seen = std::collections::HashSet::new();
        for step in &s.steps {
            prop_assert!(step.len() <= procs, "step exceeds processor count");
            prop_assert!(!step.is_empty(), "empty step scheduled");
            for slot in step {
                prop_assert!(slot.point < n && slot.sample < k);
                prop_assert!(seen.insert((slot.point, slot.sample)), "duplicate slot");
            }
        }
        prop_assert_eq!(seen.len(), n * k);
    }

    #[test]
    fn schedule_step_counts_match_closed_forms(
        n in 1usize..20,
        k in 1usize..8,
        procs in 1usize..70,
    ) {
        let seq = Schedule::plan(n, k, procs, SamplingMode::SequentialSteps);
        prop_assert_eq!(seq.n_steps(), k * n.div_ceil(procs));
        let packed = Schedule::plan(n, k, procs, SamplingMode::Packed);
        prop_assert_eq!(packed.n_steps(), (n * k).div_ceil(procs));
    }

    #[test]
    fn sequential_never_mixes_samples_of_one_point_in_a_step(
        n in 1usize..20,
        k in 2usize..6,
        procs in 1usize..40,
    ) {
        let s = Schedule::plan(n, k, procs, SamplingMode::SequentialSteps);
        for step in &s.steps {
            let mut points = std::collections::HashSet::new();
            for slot in step {
                prop_assert!(points.insert(slot.point), "point repeated within a step");
            }
        }
    }

    #[test]
    fn run_batch_returns_k_samples_per_point(
        costs in prop::collection::vec(0.1f64..50.0, 1..10),
        k in 1usize..5,
        procs in 1usize..20,
        mode in arb_mode(),
        seed in 0u64..500,
    ) {
        let cluster = Cluster::new(procs);
        let mut rng = seeded_rng(seed);
        let mut trace = TuningTrace::new();
        let samples = cluster.run_batch(&costs, k, mode, &Noise::None, &mut rng, &mut trace);
        prop_assert_eq!(samples.len(), costs.len());
        for (i, s) in samples.iter().enumerate() {
            prop_assert_eq!(s.len(), k);
            // no noise: every sample is the true cost
            prop_assert!(s.iter().all(|&x| x == costs[i]));
        }
        // total time = sum over steps of per-step maxima: bounded below
        // by the dearest single evaluation and by steps x cheapest cost
        let max_cost = costs.iter().copied().fold(0.0, f64::max);
        let min_cost = costs.iter().copied().fold(f64::INFINITY, f64::min);
        let n_steps = Schedule::plan(costs.len(), k, procs, mode).n_steps();
        prop_assert_eq!(trace.len(), n_steps);
        prop_assert!(trace.total_time() >= max_cost - 1e-9);
        prop_assert!(trace.total_time() >= n_steps as f64 * min_cost - 1e-9);
    }

    #[test]
    fn noisy_steps_dominate_true_costs(
        costs in prop::collection::vec(0.1f64..20.0, 1..8),
        rho in 0.05f64..0.6,
        seed in 0u64..300,
    ) {
        let cluster = Cluster::new(8);
        let mut rng = seeded_rng(seed);
        let noise = Noise::Pareto { alpha: 1.7, rho };
        let out = cluster.execute_step(&costs[..costs.len().min(8)], &noise, &mut rng);
        let max_cost = costs[..costs.len().min(8)].iter().copied().fold(0.0, f64::max);
        prop_assert!(out.t_k >= max_cost);
    }

    #[test]
    fn heterogeneity_barrier_is_the_worst_factor(
        factors in prop::collection::vec(1.0f64..5.0, 1..16),
    ) {
        let h = Heterogeneity::from_factors(factors.clone());
        let max = factors.iter().copied().fold(1.0, f64::max);
        prop_assert!((h.barrier_factor() - max).abs() < 1e-12);
        prop_assert!(h.imbalance() >= -1e-12);
    }

    #[test]
    fn par_map_matches_serial_map(n in 0usize..200, mult in 1u64..100) {
        let parallel = par_map_indexed(n, |i| i as u64 * mult);
        let serial: Vec<u64> = (0..n).map(|i| i as u64 * mult).collect();
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn pool_map_identical_across_worker_counts(n in 0usize..300, seed in 0u64..100) {
        // jobs draw randomness from index-derived streams, exactly like
        // real replications; any worker count must give the same vector
        let f = |i: usize| seeded_rng(stream_seed(seed, i as u64)).random::<f64>();
        let expect: Vec<u64> = (0..n).map(|i| f(i).to_bits()).collect();
        for workers in [1usize, 2, 3, 7] {
            let got: Vec<u64> = par_map_indexed_in(workers, n, f)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            prop_assert_eq!(&got, &expect, "workers={}", workers);
        }
    }

    #[test]
    fn pool_reductions_bit_identical_across_worker_counts(
        n in 1usize..400,
        seed in 0u64..100,
    ) {
        // floating-point sums are not associative: only the fixed block
        // structure makes different worker counts agree exactly
        let f = |i: usize| seeded_rng(stream_seed(seed, i as u64)).random::<f64>() * 10.0;
        let mean1 = par_mean_in(1, n, f);
        let sum1 = par_map_reduce_in(1, n, f, 0.0, |a, x| a + x, |a, b| a + b);
        for workers in [2usize, 3, 8] {
            prop_assert_eq!(par_mean_in(workers, n, f).to_bits(), mean1.to_bits());
            let sum = par_map_reduce_in(workers, n, f, 0.0, |a, x| a + x, |a, b| a + b);
            prop_assert_eq!(sum.to_bits(), sum1.to_bits());
        }
    }

    #[test]
    fn spec_round_trips_arbitrary_spaces(defs in prop::collection::vec(arb_def(), 1..5)) {
        let space = ParamSpace::new(defs).unwrap();
        let spec = format_space(&space);
        let reparsed = parse_space(&spec).unwrap_or_else(|e| panic!("`{spec}`: {e}"));
        prop_assert_eq!(space, reparsed);
    }

    #[test]
    fn spec_parser_never_panics_on_garbage(input in "[ -~]{0,60}") {
        // arbitrary printable ASCII: must return Ok or Err, never panic
        let _ = parse_space(&input);
    }
}

/// The regression case recorded in `property_cluster.proptest-regressions`
/// (`costs = [0.1], k = 2, procs = 2, mode = Packed, seed = 0`), promoted
/// to an explicit unit test: the vendored proptest has no shrinking and
/// does not replay regression files, so historical failures live here.
/// With two processors and one point, Packed mode runs both samples in a
/// single step; the step must still deliver k samples and charge the
/// barrier the worst (here: only) cost.
#[test]
fn regression_packed_single_point_two_procs() {
    let costs = [0.1];
    let (k, procs) = (2, 2);
    let cluster = Cluster::new(procs);
    let mut rng = seeded_rng(0);
    let mut trace = TuningTrace::new();
    let samples = cluster.run_batch(
        &costs,
        k,
        SamplingMode::Packed,
        &Noise::None,
        &mut rng,
        &mut trace,
    );
    assert_eq!(samples.len(), 1);
    assert_eq!(samples[0], vec![0.1, 0.1]);
    assert_eq!(trace.len(), 1, "both samples pack into one step");
    assert!((trace.total_time() - 0.1).abs() < 1e-12);
}

fn arb_def() -> impl Strategy<Value = ParamDef> {
    prop_oneof![
        ("[a-z]{1,8}", -100i64..100, 1i64..50, 1i64..9).prop_map(|(name, lo, span, step)| {
            ParamDef::integer(name, lo, lo + span, step).unwrap()
        }),
        ("[a-z]{1,8}", -100i64..100, 1i64..200).prop_map(|(name, lo, span)| {
            ParamDef::continuous(name, lo as f64, (lo + span) as f64).unwrap()
        }),
        (
            "[a-z]{1,8}",
            prop::collection::btree_set(-500i64..500, 2..6)
        )
            .prop_map(|(name, set)| {
                let levels: Vec<f64> = set.into_iter().map(|v| v as f64).collect();
                ParamDef::levels(name, levels).unwrap()
            }),
    ]
}

//! Property-based tests of the optimizer layer: PRO must behave (only
//! admissible proposals, monotone incumbent, bounded batch sizes,
//! termination) under *adversarial* objective values, not just smooth
//! functions.

use harmony::core::nelder_mead::NelderMead;
use harmony::core::restart::restarting_pro;
use harmony::core::sro::SroOptimizer;
use harmony::core::CachedObjective;
use harmony::prelude::*;
use harmony::surface::objective::FnObjective;
use proptest::prelude::*;

fn arb_space() -> impl Strategy<Value = ParamSpace> {
    prop::collection::vec(
        (0i64..20, 1i64..30, 1i64..4).prop_map(|(lo, span, step)| {
            ParamDef::integer("p", lo, lo + span, step).expect("valid integer param")
        }),
        1..=3,
    )
    .prop_map(|defs| ParamSpace::new(defs).expect("valid space"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pro_proposals_admissible_under_adversarial_values(
        space in arb_space(),
        values in prop::collection::vec(0.1f64..1e6, 400),
        r in 0.05f64..1.0,
    ) {
        let cfg = ProConfig { relative_size: r, ..ProConfig::default() };
        let mut opt = ProOptimizer::new(space.clone(), cfg);
        let mut cursor = 0usize;
        let mut batches = 0usize;
        while batches < 200 {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            for p in &batch {
                prop_assert!(space.is_admissible(p), "inadmissible proposal {p:?}");
            }
            let vals: Vec<f64> = batch
                .iter()
                .map(|_| {
                    let v = values[cursor % values.len()];
                    cursor += 1;
                    v
                })
                .collect();
            opt.observe(&vals);
            batches += 1;
        }
        // an incumbent always exists after the first observation
        prop_assert!(opt.best().is_some());
    }

    #[test]
    fn pro_incumbent_is_monotone(
        space in arb_space(),
        values in prop::collection::vec(0.1f64..1e3, 300),
    ) {
        let mut opt = ProOptimizer::with_defaults(space);
        let mut cursor = 0usize;
        let mut best_so_far = f64::INFINITY;
        for _ in 0..100 {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            let vals: Vec<f64> = batch
                .iter()
                .map(|_| {
                    let v = values[cursor % values.len()];
                    cursor += 1;
                    v
                })
                .collect();
            best_so_far = best_so_far.min(vals.iter().copied().fold(f64::INFINITY, f64::min));
            opt.observe(&vals);
            let (_, cur) = opt.best().expect("incumbent exists");
            prop_assert!((cur - best_so_far).abs() < 1e-12, "incumbent {cur} vs {best_so_far}");
        }
    }

    #[test]
    fn pro_terminates_on_deterministic_objectives(
        space in arb_space(),
        a in 0.0f64..5.0,
        b in 0.0f64..5.0,
        c in 0.0f64..5.0,
    ) {
        // arbitrary positive-definite-ish separable objective
        let mut opt = ProOptimizer::with_defaults(space.clone());
        let coefs = [a + 0.1, b + 0.1, c + 0.1];
        let target = space.center();
        let mut batches = 0;
        loop {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            let vals: Vec<f64> = batch
                .iter()
                .map(|p| {
                    (0..space.dims())
                        .map(|d| coefs[d] * (p[d] - target[d]).powi(2))
                        .sum::<f64>()
                        + 1.0
                })
                .collect();
            opt.observe(&vals);
            batches += 1;
            prop_assert!(batches < 3_000, "PRO failed to terminate");
        }
        prop_assert!(opt.converged());
        // center of the space is a global minimum here
        let (best, _) = opt.best().expect("incumbent exists");
        prop_assert_eq!(best, target);
    }

    #[test]
    fn sro_matches_pro_batch_semantics(
        space in arb_space(),
        values in prop::collection::vec(0.1f64..100.0, 200),
    ) {
        let mut opt = SroOptimizer::with_defaults(space.clone());
        for cursor in 0..150 {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            prop_assert_eq!(batch.len(), 1);
            prop_assert!(space.is_admissible(&batch[0]));
            opt.observe(&[values[cursor % values.len()]]);
        }
    }

    #[test]
    fn nelder_mead_survives_adversarial_values(
        space in arb_space(),
        values in prop::collection::vec(0.1f64..1e5, 200),
    ) {
        let mut opt = NelderMead::with_defaults(space.clone());
        let mut cursor = 0usize;
        for _ in 0..150 {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            for p in &batch {
                prop_assert!(space.is_admissible(p), "inadmissible NM proposal {p:?}");
            }
            let vals: Vec<f64> = batch
                .iter()
                .map(|_| {
                    let v = values[cursor % values.len()];
                    cursor += 1;
                    v
                })
                .collect();
            opt.observe(&vals);
        }
        prop_assert!(opt.best().is_some());
    }

    #[test]
    fn restarting_pro_is_well_behaved(
        space in arb_space(),
        values in prop::collection::vec(0.1f64..1e3, 250),
        starts in 1usize..4,
    ) {
        let mut opt = restarting_pro(space.clone(), harmony::core::ProConfig::default(), starts, 11);
        let mut cursor = 0usize;
        let mut batches = 0usize;
        loop {
            let batch = opt.propose();
            if batch.is_empty() {
                break;
            }
            for p in &batch {
                prop_assert!(space.is_admissible(p));
            }
            let vals: Vec<f64> = batch
                .iter()
                .map(|_| {
                    let v = values[cursor % values.len()];
                    cursor += 1;
                    v
                })
                .collect();
            opt.observe(&vals);
            batches += 1;
            prop_assert!(batches < 5_000, "restarting PRO failed to terminate");
        }
        prop_assert!(opt.converged());
        prop_assert!(opt.starts() <= starts);
        // the recommendation never exceeds the incumbent estimate by
        // more than noise-free bookkeeping allows
        let (_, best) = opt.best().expect("incumbent exists");
        let (_, rec) = opt.recommendation().expect("recommendation exists");
        prop_assert!(rec >= best - 1e-12);
    }

    #[test]
    fn cached_objective_never_changes_outcomes(
        seed in 0u64..200,
        steps in 20usize..80,
        rho in 0.0f64..0.5,
    ) {
        // memoization must be invisible: a session run on the raw
        // objective and one on an explicitly wrapped objective agree on
        // every field, bit for bit
        let space = ParamSpace::new(vec![
            ParamDef::integer("x", -10, 10, 1).expect("valid"),
            ParamDef::integer("y", -10, 10, 1).expect("valid"),
        ]).expect("valid space");
        let obj = FnObjective::new("bowl", space.clone(), |p| {
            2.0 + 0.07 * (p[0] * p[0] + p[1] * p[1])
        });
        let noise = Noise::paper_default(rho);
        let cfg = TunerConfig {
            procs: 16,
            max_steps: steps,
            estimator: Estimator::MinOfK(2),
            mode: SamplingMode::SequentialSteps,
            seed,
            full_occupancy: true,
            exploit_width: 4,
        };
        let run = |o: &dyn Objective| {
            let mut opt = ProOptimizer::with_defaults(space.clone());
            OnlineTuner::new(cfg).run(o, &noise, &mut opt).unwrap()
        };
        let raw = run(&obj);
        let cached = CachedObjective::new(&obj);
        let wrapped = run(&cached);
        // the tuner's own internal memo absorbs repeats, so the outer
        // wrapper sees each distinct point exactly once
        prop_assert!(cached.misses() > 0 && cached.misses() == cached.len());
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(raw.trace.step_times()), bits(wrapped.trace.step_times()));
        prop_assert_eq!(raw.best_point, wrapped.best_point);
        prop_assert_eq!(raw.best_estimate.to_bits(), wrapped.best_estimate.to_bits());
        prop_assert_eq!(raw.best_true_cost.to_bits(), wrapped.best_true_cost.to_bits());
        prop_assert_eq!(raw.converged, wrapped.converged);
        prop_assert_eq!(raw.evaluations, wrapped.evaluations);
        prop_assert_eq!(raw.quality_curve.len(), wrapped.quality_curve.len());
        for (a, b) in raw.quality_curve.iter().zip(wrapped.quality_curve.iter()) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn estimator_reductions_are_order_statistics(samples in prop::collection::vec(0.0f64..1e4, 1..12)) {
        let k = samples.len();
        let min = Estimator::MinOfK(k).reduce(&samples);
        let med = Estimator::MedianOfK(k).reduce(&samples);
        let mean = Estimator::MeanOfK(k).reduce(&samples);
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(min, lo);
        prop_assert!(med >= lo && med <= hi);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }
}
